// Shard-aware execution: per-shard thread pools, the BSP round barrier,
// and the lock-free message-exchange grid the sharded kernels use.
//
// Execution model (docs/sharding.md): one driver OS thread per shard, each
// running parallel regions on its own private thread_pool. A round is
//
//   compute  — workers of shard s append messages to outbox(s, t, worker);
//              each (from, to, worker) staging buffer has exactly one
//              writer, so the hot path is a plain vector push_back — no
//              locks, no atomics (the sliding replicated-queue idiom:
//              produce into your own replica, publish by sliding the
//              window at the synchronization point);
//   barrier  — the last arriver runs the registered hooks (mailbox swap,
//              round accounting) while every other shard is parked, then
//              releases them: the swap itself is single-threaded and
//              lock-free by construction;
//   exchange — shard t drains every buffer addressed to it from the
//              now-published generation while writers stage the next one.
//
// All cross-shard visibility is ordered by the barrier's mutex, so the
// kernels built on this primitive are TSan-clean by construction
// (tests/shard_stress_test.cpp pins that).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "micg/rt/exec.hpp"
#include "micg/rt/thread_pool.hpp"
#include "micg/support/assert.hpp"

#include <condition_variable>
#include <mutex>

namespace micg::rt {

/// Reusable cyclic barrier for BSP rounds. Parties may register a hook
/// with their arrival; the last arriver runs every registered hook (in
/// arrival order) before releasing the generation — the "swap at barrier"
/// point where single-threaded cross-shard work is safe. Hooks must not
/// throw.
class bsp_barrier {
 public:
  explicit bsp_barrier(int parties) : parties_(parties) {
    MICG_CHECK(parties >= 1, "barrier needs at least one party");
  }
  bsp_barrier(const bsp_barrier&) = delete;
  bsp_barrier& operator=(const bsp_barrier&) = delete;

  /// Block until all parties of this generation have arrived.
  void arrive_and_wait(std::function<void()> at_barrier = {});

  [[nodiscard]] int parties() const { return parties_; }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::function<void()>> hooks_;
};

/// N x N x workers staging/ready double buffer of message vectors.
/// outbox(from, to, worker) is exclusively owned by (from, worker) during
/// a compute phase; swap() publishes every staged buffer at once and must
/// run at the barrier (register it as the arrival hook of one shard).
/// drain(to, f) consumes and clears everything addressed to `to` from the
/// published generation.
template <class T>
class mailbox_grid {
 public:
  mailbox_grid(int shards, int workers_per_shard)
      : shards_(shards), workers_(workers_per_shard) {
    MICG_CHECK(shards >= 1 && workers_per_shard >= 1,
               "mailbox grid needs at least one shard and worker");
    const auto cells = static_cast<std::size_t>(shards) *
                       static_cast<std::size_t>(shards) *
                       static_cast<std::size_t>(workers_per_shard);
    staged_.resize(cells);
    ready_.resize(cells);
  }

  [[nodiscard]] int shards() const { return shards_; }
  [[nodiscard]] int workers() const { return workers_; }

  /// The staging buffer of (from, worker) addressed to `to`.
  std::vector<T>& outbox(int from, int to, int worker) {
    return staged_[cell(from, to, worker)];
  }

  /// Publish the staged generation. Call from a barrier hook (exactly one
  /// per round): every consumer must have drained its previous inboxes,
  /// so the buffers swapped back into staging are empty.
  void swap() {
    staged_.swap(ready_);
    std::uint64_t moved = 0;
    for (const auto& buf : ready_) moved += buf.size();
    last_swap_messages_ = moved;
  }

  /// Messages published by the most recent swap() (the per-round exchange
  /// volume the obs layer reports).
  [[nodiscard]] std::uint64_t last_swap_messages() const {
    return last_swap_messages_;
  }

  /// The published buffer of (from, worker) addressed to `to` — for
  /// consumers that need per-sender order (the halo scatter). The
  /// consumer must clear() it before the next swap, or stale messages
  /// leak into the sender's next staging generation.
  std::vector<T>& inbox(int from, int to, int worker) {
    return ready_[cell(from, to, worker)];
  }

  /// Consume every published message addressed to shard `to`, in (from,
  /// worker) order, clearing the buffers for reuse.
  template <class F>
  void drain(int to, F&& f) {
    for (int from = 0; from < shards_; ++from) {
      for (int w = 0; w < workers_; ++w) {
        auto& buf = ready_[cell(from, to, w)];
        for (const T& msg : buf) f(msg);
        buf.clear();
      }
    }
  }

 private:
  [[nodiscard]] std::size_t cell(int from, int to, int worker) const {
    MICG_ASSERT(from >= 0 && from < shards_ && to >= 0 && to < shards_ &&
                worker >= 0 && worker < workers_);
    return (static_cast<std::size_t>(from) *
                static_cast<std::size_t>(shards_) +
            static_cast<std::size_t>(to)) *
               static_cast<std::size_t>(workers_) +
           static_cast<std::size_t>(worker);
  }

  const int shards_;
  const int workers_;
  std::vector<std::vector<T>> staged_;  ///< being written this phase
  std::vector<std::vector<T>> ready_;   ///< published by the last swap
  std::uint64_t last_swap_messages_ = 0;
};

/// Per-shard execution contexts: one private thread_pool per shard (so
/// shards' parallel regions run concurrently — the global pool rejects
/// that) and the round barrier sized to the shard count.
class shard_group {
 public:
  /// `proto` is the per-shard execution configuration; its pool/sched
  /// fields are ignored and rebound per shard.
  shard_group(int shards, const exec& proto);

  [[nodiscard]] int shards() const { return static_cast<int>(pools_.size()); }
  [[nodiscard]] const exec& proto() const { return proto_; }
  [[nodiscard]] bsp_barrier& barrier() { return barrier_; }

  /// `proto` bound to shard s's private pool.
  [[nodiscard]] exec shard_exec(int s) const {
    exec e = proto_;
    e.pool = pools_[static_cast<std::size_t>(s)].get();
    e.sched = nullptr;
    e.affinity = nullptr;
    return e;
  }

  /// Run `driver(shard)` for every shard concurrently, one OS thread per
  /// shard (the caller drives shard 0). Rethrows the first driver
  /// exception after all drivers return; drivers that use the barrier
  /// must not throw between arrive_and_wait calls that other shards will
  /// reach, or the group deadlocks — validate before entering the rounds.
  void run(const std::function<void(int)>& driver);

 private:
  exec proto_;
  std::vector<std::unique_ptr<thread_pool>> pools_;
  bsp_barrier barrier_;
};

}  // namespace micg::rt
