// TBB-style parallel_for with the three partitioners the paper compares
// (§II-C): simple (recursive split to grain), auto (split further only when
// a range is stolen), affinity (replay chunk->worker placement across
// repeated loops).
#pragma once

#include <atomic>
#include <memory>
#include <cstdint>
#include <vector>

#include "micg/rt/range.hpp"
#include "micg/rt/scheduler.hpp"
#include "micg/rt/worker.hpp"
#include "micg/support/cacheline.hpp"

namespace micg::rt {

/// Recursively split the range until it is no longer divisible; execute
/// every leaf as a work-stealing task. "In a way, the simple partitioner is
/// similar to the dynamic scheduling policy of OpenMP" (§II-C).
struct simple_partitioner {};

/// Create roughly one subrange per worker up front; split a subrange
/// further only when it is observed to have been stolen (TBB's
/// split-on-steal heuristic), bounded by a split depth.
struct auto_partitioner {
  /// Extra binary splits allowed after a steal before executing in place.
  int max_extra_splits = 4;
};

/// Remembers which worker executed each chunk of the previous invocation
/// and offers chunks to the same worker first; idle workers steal leftover
/// chunks. Reuse one instance across loop invocations to benefit.
class affinity_partitioner {
 public:
  /// chunks_per_worker controls placement granularity (TBB uses a small
  /// multiple of the worker count).
  explicit affinity_partitioner(int chunks_per_worker = 4)
      : chunks_per_worker_(chunks_per_worker) {}

  [[nodiscard]] int chunks_per_worker() const { return chunks_per_worker_; }

  /// Placement map from the previous run: chunk index -> preferred worker.
  /// Empty before the first run or after a geometry change.
  [[nodiscard]] const std::vector<int>& placement() const {
    return placement_;
  }

 private:
  template <typename Body>
  friend void parallel_for(task_scheduler&, blocked_range, const Body&,
                           affinity_partitioner&);

  int chunks_per_worker_;
  std::vector<int> placement_;
  std::int64_t last_size_ = -1;
};

namespace detail {

template <typename Body>
void simple_split_exec(task_scheduler& sched, blocked_range r,
                       const Body& body) {
  while (r.is_divisible()) {
    blocked_range right = r.split();
    task_group g(sched);
    g.spawn([&sched, right, &body] { simple_split_exec(sched, right, body); });
    simple_split_exec(sched, r, body);
    g.wait();
    return;
  }
  if (!r.empty()) body(r, this_worker_id());
}

template <typename Body>
void auto_split_exec(task_scheduler& sched, blocked_range r, const Body& body,
                     int splits_left) {
  // Split further only when this task landed on a thief, imitating TBB's
  // auto_partitioner: work splits lazily, tracking actual imbalance.
  while (splits_left > 0 && r.is_divisible() &&
         task_scheduler::current_task_was_stolen()) {
    blocked_range right = r.split();
    const int remaining = splits_left - 1;
    task_group g(sched);
    g.spawn([&sched, right, &body, remaining] {
      auto_split_exec(sched, right, body, remaining);
    });
    auto_split_exec(sched, r, body, remaining);
    g.wait();
    return;
  }
  if (!r.empty()) body(r, this_worker_id());
}

}  // namespace detail

/// parallel_for with the simple partitioner. `body(range, worker)` receives
/// leaf ranges of at most `grain` iterations.
template <typename Body>
void parallel_for(task_scheduler& sched, blocked_range range,
                  const Body& body, simple_partitioner) {
  if (range.empty()) return;
  sched.run([&] { detail::simple_split_exec(sched, range, body); });
}

/// parallel_for with the auto partitioner.
template <typename Body>
void parallel_for(task_scheduler& sched, blocked_range range,
                  const Body& body, auto_partitioner ap) {
  if (range.empty()) return;
  const int nthreads = sched.nthreads();
  sched.run([&] {
    // Seed one subrange per worker, then let steals drive further splits.
    const std::int64_t n = range.size();
    const std::int64_t per =
        (n + nthreads - 1) / static_cast<std::int64_t>(nthreads);
    task_group g(sched);
    for (std::int64_t b = range.begin(); b < range.end(); b += per) {
      const std::int64_t e = b + per < range.end() ? b + per : range.end();
      blocked_range sub(b, e, range.grain());
      g.spawn([&sched, sub, &body, ap] {
        detail::auto_split_exec(sched, sub, body, ap.max_extra_splits);
      });
    }
    g.wait();
  });
}

/// parallel_for with the affinity partitioner. Chunks are offered to the
/// worker that ran them last time; leftovers are claimed FCFS.
template <typename Body>
void parallel_for(task_scheduler& sched, blocked_range range,
                  const Body& body, affinity_partitioner& ap) {
  if (range.empty()) return;
  const int nthreads = sched.nthreads();
  const std::int64_t n = range.size();
  std::int64_t nchunks =
      static_cast<std::int64_t>(nthreads) * ap.chunks_per_worker_;
  // Never create chunks below the grain size.
  const std::int64_t max_chunks =
      (n + range.grain() - 1) / range.grain();
  if (nchunks > max_chunks) nchunks = max_chunks;
  if (nchunks < 1) nchunks = 1;

  if (ap.last_size_ != n ||
      static_cast<std::int64_t>(ap.placement_.size()) != nchunks) {
    // Geometry changed: default placement is blocked (chunk c -> worker
    // c*nthreads/nchunks), which is also cache-friendly for a first run.
    ap.placement_.assign(static_cast<std::size_t>(nchunks), 0);
    for (std::int64_t c = 0; c < nchunks; ++c) {
      ap.placement_[static_cast<std::size_t>(c)] =
          static_cast<int>(c * nthreads / nchunks);
    }
    ap.last_size_ = n;
  }

  // Array, not vector: padded<atomic> is neither copyable nor movable.
  auto claimed = std::make_unique<padded<std::atomic<bool>>[]>(
      static_cast<std::size_t>(nchunks));
  std::vector<int> ran_by(static_cast<std::size_t>(nchunks), 0);
  const std::vector<int> preferred = ap.placement_;

  auto chunk_bounds = [&](std::int64_t c) {
    const std::int64_t b = range.begin() + c * n / nchunks;
    const std::int64_t e = range.begin() + (c + 1) * n / nchunks;
    return blocked_range(b, e, range.grain());
  };

  sched.run([&] {
    task_group g(sched);
    for (int w = 1; w < nthreads; ++w) {
      g.spawn([&, w] {
        // Pass 1: chunks placed on me last time.
        for (std::int64_t c = 0; c < nchunks; ++c) {
          const auto ci = static_cast<std::size_t>(c);
          if (preferred[ci] != w) continue;
          if (claimed[ci].value.exchange(true, std::memory_order_acq_rel))
            continue;
          ran_by[ci] = this_worker_id();
          body(chunk_bounds(c), this_worker_id());
        }
        // Pass 2: help with whatever is left (affinity misses).
        for (std::int64_t c = 0; c < nchunks; ++c) {
          const auto ci = static_cast<std::size_t>(c);
          if (claimed[ci].value.exchange(true, std::memory_order_acq_rel))
            continue;
          ran_by[ci] = this_worker_id();
          body(chunk_bounds(c), this_worker_id());
        }
      });
    }
    // Worker 0 does its own passes inline.
    for (std::int64_t c = 0; c < nchunks; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      if (preferred[ci] != 0) continue;
      if (claimed[ci].value.exchange(true, std::memory_order_acq_rel))
        continue;
      ran_by[ci] = this_worker_id();
      body(chunk_bounds(c), this_worker_id());
    }
    for (std::int64_t c = 0; c < nchunks; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      if (claimed[ci].value.exchange(true, std::memory_order_acq_rel))
        continue;
      ran_by[ci] = this_worker_id();
      body(chunk_bounds(c), this_worker_id());
    }
    g.wait();
  });

  ap.placement_ = ran_by;  // remember actual placement for the next loop
}

}  // namespace micg::rt
