#include "micg/rt/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "micg/obs/obs.hpp"
#include "micg/rt/worker.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/timer.hpp"

namespace micg::rt {

namespace {

/// Per-worker busy-time publication. When no recorder is installed this
/// costs one relaxed atomic load per worker per region (kept < 2% on the
/// fork-join microbench in bench/micro_runtime.cpp).
template <typename Fn>
void run_observed(int worker, const Fn& fn) {
  obs::recorder* rec = obs::recorder::global();
  if (rec == nullptr) {
    fn();
    return;
  }
  stopwatch sw;
  fn();
  rec->get_timer("rt.worker_busy").add_seconds(worker, sw.seconds());
}

}  // namespace

thread_pool::thread_pool(int max_threads) {
  MICG_CHECK(max_threads >= 1, "pool needs at least one thread");
  std::lock_guard<std::mutex> lock(mu_);
  spawn_locked(max_threads - 1);
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

thread_pool& thread_pool::global() {
  static thread_pool pool([] {
    int n = 128;
    if (const char* env = std::getenv("MICG_MAX_THREADS")) {
      const int parsed = std::atoi(env);
      if (parsed >= 1) n = parsed;
    }
    return n;
  }());
  return pool;
}

int thread_pool::max_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size()) + 1;
}

void thread_pool::reserve(int nthreads) {
  std::lock_guard<std::mutex> lock(mu_);
  spawn_locked(nthreads - 1);
}

void thread_pool::spawn_locked(int target_helpers) {
  // Caller holds mu_. Helpers are workers 1..target; worker 0 is the caller.
  while (static_cast<int>(threads_.size()) < target_helpers) {
    const int id = static_cast<int>(threads_.size()) + 1;
    threads_.emplace_back([this, id] { worker_main(id); });
  }
}

void thread_pool::run(int nthreads, const std::function<void(int)>& fn) {
  MICG_CHECK(nthreads >= 1, "parallel region needs at least one worker");

  // Region fork/join accounting (single relaxed load when recording is
  // off). Wall time for multi-thread regions spans fork to last join.
  obs::recorder* region_rec = obs::recorder::global();
  if (region_rec != nullptr) {
    region_rec->get_counter("rt.regions").inc(0);
    region_rec->get_counter("rt.region_workers")
        .add(0, static_cast<std::uint64_t>(nthreads));
  }
  stopwatch region_clock;

  // Width-1 regions execute inline and are therefore legal anywhere —
  // including nested inside another region (a pipeline filter running a
  // serial coloring, a task calling a serial library routine, ...). The
  // worker id is scoped so per-worker storage indexes slot 0 and is
  // restored afterwards.
  if (nthreads == 1) {
    worker_id_scope scope(0);
    run_observed(0, [&] { fn(0); });
    return;
  }
  MICG_CHECK(this_worker_id() < 0,
             "a multi-thread thread_pool::run() is not reentrant from "
             "inside a parallel region (use width 1, or the work-stealing "
             "scheduler for nested parallelism)");

  {
    std::unique_lock<std::mutex> lock(mu_);
    MICG_CHECK(!in_region_, "concurrent thread_pool::run() calls");
    spawn_locked(nthreads - 1);
    in_region_ = true;
    job_fn_ = &fn;
    job_threads_ = nthreads;
    job_remaining_.store(nthreads - 1, std::memory_order_relaxed);
    job_error_ = nullptr;
    ++job_epoch_;
  }
  cv_.notify_all();

  // Exceptions (from any worker, including this caller) must not unwind
  // past the region while helpers still reference `fn`: capture the first
  // one, always join, rethrow after.
  std::exception_ptr caller_error;
  {
    worker_id_scope scope(0);
    try {
      run_observed(0, [&] { fn(0); });
    } catch (...) {
      caller_error = std::current_exception();
    }
  }

  std::exception_ptr helper_error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] {
      return job_remaining_.load(std::memory_order_acquire) == 0;
    });
    job_fn_ = nullptr;
    in_region_ = false;
    helper_error = job_error_;
    job_error_ = nullptr;
  }
  if (region_rec != nullptr) {
    region_rec->get_timer("rt.region_wall")
        .add_seconds(0, region_clock.seconds());
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (helper_error) std::rethrow_exception(helper_error);
}

void thread_pool::worker_main(int id) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || job_epoch_ != seen_epoch; });
      if (stopping_) return;
      seen_epoch = job_epoch_;
      if (id < job_threads_) fn = job_fn_;
    }
    if (fn != nullptr) {
      {
        worker_id_scope scope(id);
        try {
          run_observed(id, [&] { (*fn)(id); });
        } catch (...) {
          // First worker exception wins; rethrown by run() on the caller.
          std::lock_guard<std::mutex> lock(mu_);
          if (!job_error_) job_error_ = std::current_exception();
        }
      }
      if (job_remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last helper out wakes the caller. Take the lock so the notify
        // cannot race with the caller's wait registration.
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_one();
      }
    }
  }
}

}  // namespace micg::rt
