// Unified execution-backend facade.
//
// Every algorithm in micgraph (coloring, BFS, irregular kernel) is written
// against for_range(); an exec value selects which programming-model
// substrate runs the loop — the nine variants the paper evaluates:
//
//   OpenMP-style : static | static-chunked | dynamic | guided schedules
//   Cilk-style   : recursive cilk_for (worker-id or holder local storage —
//                  the storage choice lives in the algorithm, both run the
//                  same loop)
//   TBB-style    : simple | auto | affinity partitioners
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "micg/obs/obs.hpp"
#include "micg/rt/cilk_for.hpp"
#include "micg/rt/loop.hpp"
#include "micg/rt/partitioner.hpp"
#include "micg/rt/scheduler.hpp"
#include "micg/rt/thread_pool.hpp"

namespace micg::rt {

enum class backend {
  omp_static,
  omp_static_chunked,
  omp_dynamic,
  omp_guided,
  cilk_tid,     ///< cilk_for + worker-id-indexed local storage
  cilk_holder,  ///< cilk_for + holder views (the paper's preferred variant)
  tbb_simple,
  tbb_auto,
  tbb_affinity,
};

/// Paper-style display name ("OpenMP-dynamic", "CilkPlus-holder", ...).
const char* backend_name(backend b);

/// Parse a display name back to the enum; throws micg::check_error on
/// unknown names.
backend backend_from_name(const std::string& name);

inline bool is_omp(backend b) {
  return b == backend::omp_static || b == backend::omp_static_chunked ||
         b == backend::omp_dynamic || b == backend::omp_guided;
}
inline bool is_cilk(backend b) {
  return b == backend::cilk_tid || b == backend::cilk_holder;
}
inline bool is_tbb(backend b) {
  return b == backend::tbb_simple || b == backend::tbb_auto ||
         b == backend::tbb_affinity;
}

/// All nine variants, in paper order.
std::vector<backend> all_backends();

/// One loop-execution configuration. Copyable; the pointers are optional
/// non-owning references to reusable state.
struct exec {
  backend kind = backend::omp_dynamic;
  int threads = 1;
  /// Shard count for the bulk-synchronous drivers (rt/shard_exec.hpp):
  /// 1 means single-shard execution on the plain kernels; N > 1 makes the
  /// api layer partition the graph and run the sharded BSP drivers with
  /// `threads` workers per shard.
  int shards = 1;
  /// Chunk size (OpenMP), grain (Cilk leaves), or range grain (TBB).
  std::int64_t chunk = 64;
  /// Pool to run on; nullptr means thread_pool::global().
  thread_pool* pool = nullptr;
  /// Reusable scheduler for cilk/tbb backends; nullptr means a fresh
  /// scheduler per loop (correct, slightly more setup per call).
  task_scheduler* sched = nullptr;
  /// Persistent placement state for tbb_affinity; nullptr disables replay.
  affinity_partitioner* affinity = nullptr;
  /// Metrics sink the kernel publishes into; nullptr falls back to
  /// obs::recorder::global() (which is itself nullptr — recording off —
  /// unless a recorder is installed).
  obs::recorder* rec = nullptr;

  [[nodiscard]] thread_pool& pool_or_global() const {
    return pool != nullptr ? *pool : thread_pool::global();
  }

  /// The effective metrics sink for this execution; may be nullptr.
  [[nodiscard]] obs::recorder* sink() const {
    return rec != nullptr ? rec : obs::recorder::global();
  }
};

/// Run `body(chunk_begin, chunk_end, worker)` over [0, n) under the
/// configured backend. Blocking; returns when the loop is complete.
template <typename Body>
void for_range(const exec& e, std::int64_t n, const Body& body) {
  if (n <= 0) return;
  thread_pool& pool = e.pool_or_global();
  switch (e.kind) {
    case backend::omp_static:
      omp_parallel_for(pool, e.threads, n,
                       {omp_schedule::static_even, e.chunk}, body);
      return;
    case backend::omp_static_chunked:
      omp_parallel_for(pool, e.threads, n,
                       {omp_schedule::static_chunked, e.chunk}, body);
      return;
    case backend::omp_dynamic:
      omp_parallel_for(pool, e.threads, n, {omp_schedule::dynamic, e.chunk},
                       body);
      return;
    case backend::omp_guided:
      omp_parallel_for(pool, e.threads, n, {omp_schedule::guided, e.chunk},
                       body);
      return;
    case backend::cilk_tid:
    case backend::cilk_holder: {
      if (e.sched != nullptr) {
        cilk_parallel_for(*e.sched, 0, n, e.chunk, body);
      } else {
        task_scheduler sched(pool, e.threads);
        cilk_parallel_for(sched, 0, n, e.chunk, body);
      }
      return;
    }
    case backend::tbb_simple:
    case backend::tbb_auto:
    case backend::tbb_affinity: {
      auto run_with = [&](task_scheduler& sched) {
        blocked_range range(0, n, e.chunk);
        auto range_body = [&body](const blocked_range& r, int worker) {
          body(r.begin(), r.end(), worker);
        };
        if (e.kind == backend::tbb_simple) {
          parallel_for(sched, range, range_body, simple_partitioner{});
        } else if (e.kind == backend::tbb_auto) {
          parallel_for(sched, range, range_body, auto_partitioner{});
        } else {
          if (e.affinity != nullptr) {
            parallel_for(sched, range, range_body, *e.affinity);
          } else {
            affinity_partitioner ap;
            parallel_for(sched, range, range_body, ap);
          }
        }
      };
      if (e.sched != nullptr) {
        run_with(*e.sched);
      } else {
        task_scheduler sched(pool, e.threads);
        run_with(sched);
      }
      return;
    }
  }
}

}  // namespace micg::rt
