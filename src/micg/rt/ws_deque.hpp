// Chase–Lev work-stealing deque.
//
// One deque per worker: the owner pushes/pops at the bottom (LIFO, cheap),
// thieves steal from the top (FIFO, one CAS). This is the scheduling
// structure behind the Cilk-style substrate, following the memory-order
// discipline of Lê, Pop, Cohen & Zappa Nardelli, "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP'13). (CP.100 says avoid
// lock-free code unless you have to; a work-stealing runtime is the
// canonical "have to", and this is the literature-standard implementation.)
//
// T must be trivially copyable (we store raw task pointers).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

namespace micg::rt {

template <typename T>
class ws_deque {
  static_assert(std::is_trivially_copyable_v<T>,
                "ws_deque stores trivially copyable items (task pointers)");

 public:
  explicit ws_deque(std::size_t initial_capacity = 64)
      : array_(new ring(round_up(initial_capacity))) {}

  // Reclamation rule for retired rings: grow() never frees the old ring,
  // it parks it on retired_ (owner-only, unsynchronized) because a thief
  // that loaded array_ before the growth may still be reading old slots.
  // Retired rings are freed only here, and the destructor may only run
  // when no thief can still touch the deque — the scheduler guarantees
  // that by joining every worker before destroying its deques. Total
  // retired memory is bounded by the doubling: < 2x the final ring.
  ~ws_deque() {
    delete array_.load(std::memory_order_relaxed);
    for (ring* r : retired_) delete r;
  }

  ws_deque(const ws_deque&) = delete;
  ws_deque& operator=(const ws_deque&) = delete;

  /// Owner only. Push one item at the bottom.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    ring* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->put(b, item);
    // Release store (not Lê et al.'s release-fence + relaxed store): a
    // thief that acquire-loads bottom_ then synchronizes with this store,
    // which is what publishes the item *and whatever it points to* — the
    // payload edge race detectors need to see, since TSan does not model
    // standalone fences.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. Pop the most recently pushed item, if any.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    ring* a = array_.load(std::memory_order_relaxed);
    // Lê et al. write release-store(bottom); seq_cst fence; relaxed
    // load(top). The fence exists solely for the StoreLoad edge between
    // the two, and TSan does not model standalone fences — so express the
    // same edge through the seq_cst total order on the operations
    // themselves (on x86 the store compiles to the xchg the fence would
    // have cost anyway; the load stays a plain mov). A seq_cst store is
    // also a release store, which is what hands the payload
    // happens-before edge to a thief that acquire-loads bottom_.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t <= b) {
      T item = a->get(b);
      if (t == b) {
        // Single element left: race against thieves with a CAS on top.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          // Lost the race; a thief took it. Every bottom_ store is release
          // so that *whichever* store a thief's acquire load reads carries
          // the payload happens-before edge (C++20 dropped same-thread
          // stores from release sequences, so a relaxed store here would
          // break the chain formally, not just under TSan).
          bottom_.store(b + 1, std::memory_order_release);
          return std::nullopt;
        }
        bottom_.store(b + 1, std::memory_order_release);
      }
      return item;
    }
    // Deque was empty.
    bottom_.store(b + 1, std::memory_order_release);
    return std::nullopt;
  }

  /// Any thread. Steal the oldest item, if any.
  std::optional<T> steal() {
    // Same fence elimination as pop(): the paper's acquire-load(top);
    // seq_cst fence; acquire-load(bottom) becomes two seq_cst loads. The
    // total order guarantees that a thief racing the owner's pop cannot
    // read a stale bottom_ after reading the new top_, and seq_cst loads
    // are also acquire loads, so the payload edge from the owner's
    // bottom_ store and the slot-reuse edge from top_ both survive.
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t < b) {
      // Acquire, not consume: memory_order_consume is deprecated (P0371R1),
      // every current compiler already promotes it to acquire, and TSan
      // has no dependency-ordering model — so spell the promoted order.
      ring* a = array_.load(std::memory_order_acquire);
      T item = a->get(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return std::nullopt;  // lost to another thief or the owner
      }
      return item;
    }
    return std::nullopt;
  }

  /// Approximate size; exact only when the owner is quiescent.
  [[nodiscard]] std::size_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }

 private:
  struct ring {
    explicit ring(std::size_t cap) : capacity(cap), mask(cap - 1),
                                     slots(new std::atomic<T>[cap]) {}
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;

    T get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T item) {
      slots[static_cast<std::size_t>(i) & mask].store(
          item, std::memory_order_relaxed);
    }
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t c = 8;
    while (c < n) c <<= 1;
    return c;
  }

  ring* grow(ring* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    array_.store(bigger, std::memory_order_release);
    // Thieves may still hold a pointer to the old ring; retire it until the
    // deque is destroyed instead of freeing (simple, bounded leak-freedom:
    // total retired memory < 2x the peak ring size).
    retired_.push_back(old);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<ring*> array_;
  std::vector<ring*> retired_;  // owner-only
};

}  // namespace micg::rt
