// Chase–Lev work-stealing deque.
//
// One deque per worker: the owner pushes/pops at the bottom (LIFO, cheap),
// thieves steal from the top (FIFO, one CAS). This is the scheduling
// structure behind the Cilk-style substrate, following the memory-order
// discipline of Lê, Pop, Cohen & Zappa Nardelli, "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP'13). (CP.100 says avoid
// lock-free code unless you have to; a work-stealing runtime is the
// canonical "have to", and this is the literature-standard implementation.)
//
// T must be trivially copyable (we store raw task pointers).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

namespace micg::rt {

template <typename T>
class ws_deque {
  static_assert(std::is_trivially_copyable_v<T>,
                "ws_deque stores trivially copyable items (task pointers)");

 public:
  explicit ws_deque(std::size_t initial_capacity = 64)
      : array_(new ring(round_up(initial_capacity))) {}

  ~ws_deque() {
    delete array_.load(std::memory_order_relaxed);
    for (ring* r : retired_) delete r;
  }

  ws_deque(const ws_deque&) = delete;
  ws_deque& operator=(const ws_deque&) = delete;

  /// Owner only. Push one item at the bottom.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    ring* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only. Pop the most recently pushed item, if any.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    ring* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      T item = a->get(b);
      if (t == b) {
        // Single element left: race against thieves with a CAS on top.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          // Lost the race; a thief took it.
          bottom_.store(b + 1, std::memory_order_relaxed);
          return std::nullopt;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
      return item;
    }
    // Deque was empty.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return std::nullopt;
  }

  /// Any thread. Steal the oldest item, if any.
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t < b) {
      ring* a = array_.load(std::memory_order_consume);
      T item = a->get(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return std::nullopt;  // lost to another thief or the owner
      }
      return item;
    }
    return std::nullopt;
  }

  /// Approximate size; exact only when the owner is quiescent.
  [[nodiscard]] std::size_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }

 private:
  struct ring {
    explicit ring(std::size_t cap) : capacity(cap), mask(cap - 1),
                                     slots(new std::atomic<T>[cap]) {}
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;

    T get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T item) {
      slots[static_cast<std::size_t>(i) & mask].store(
          item, std::memory_order_relaxed);
    }
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t c = 8;
    while (c < n) c <<= 1;
    return c;
  }

  ring* grow(ring* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    array_.store(bigger, std::memory_order_release);
    // Thieves may still hold a pointer to the old ring; retire it until the
    // deque is destroyed instead of freeing (simple, bounded leak-freedom:
    // total retired memory < 2x the peak ring size).
    retired_.push_back(old);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<ring*> array_;
  std::vector<ring*> retired_;  // owner-only
};

}  // namespace micg::rt
