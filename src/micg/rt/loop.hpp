// OpenMP-style parallel loop scheduling: static, static-chunked, dynamic
// and guided policies (§II-A of the paper), executed on the persistent
// thread pool. Implemented here rather than with compiler OpenMP so all
// three programming-model substrates share one pool and are equally
// instrumentable by the scheduling model.
#pragma once

#include <atomic>
#include <cstdint>

#include "micg/rt/thread_pool.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/cacheline.hpp"

namespace micg::rt {

enum class omp_schedule {
  static_even,     ///< one contiguous block per thread (OpenMP static)
  static_chunked,  ///< round-robin chunks (OpenMP static,chunk)
  dynamic,         ///< FCFS chunks off a shared counter (OpenMP dynamic,chunk)
  guided,          ///< geometrically decreasing chunks (OpenMP guided,chunk)
};

struct loop_options {
  omp_schedule schedule = omp_schedule::dynamic;
  std::int64_t chunk = 64;  ///< chunk size (minimum chunk for guided)
};

/// Parallel loop over [0, n). `body(chunk_begin, chunk_end, worker)` runs
/// for every chunk the policy hands to `worker`. The calling thread
/// participates as worker 0; returns when the whole range is done.
template <typename Body>
void omp_parallel_for(thread_pool& pool, int nthreads, std::int64_t n,
                      const loop_options& opt, const Body& body) {
  MICG_CHECK(nthreads >= 1, "need at least one thread");
  if (n <= 0) return;
  const std::int64_t chunk = opt.chunk > 0 ? opt.chunk : 1;

  switch (opt.schedule) {
    case omp_schedule::static_even: {
      pool.run(nthreads, [&](int w) {
        // Evenly sized contiguous blocks, remainder spread over the first
        // (n % nthreads) workers — the usual OpenMP static partition.
        const std::int64_t base = n / nthreads;
        const std::int64_t rem = n % nthreads;
        const std::int64_t begin =
            w * base + (w < rem ? w : rem);
        const std::int64_t len = base + (w < rem ? 1 : 0);
        if (len > 0) body(begin, begin + len, w);
      });
      break;
    }
    case omp_schedule::static_chunked: {
      pool.run(nthreads, [&](int w) {
        for (std::int64_t b = static_cast<std::int64_t>(w) * chunk; b < n;
             b += static_cast<std::int64_t>(nthreads) * chunk) {
          const std::int64_t e = b + chunk < n ? b + chunk : n;
          body(b, e, w);
        }
      });
      break;
    }
    case omp_schedule::dynamic: {
      // Shared cursor; each claim is one fetch_add (the paper's observation
      // that cheap dynamic scheduling wins on latency-bound kernels, §V-B).
      alignas(cacheline_size) std::atomic<std::int64_t> next{0};
      pool.run(nthreads, [&](int w) {
        for (;;) {
          const std::int64_t b =
              next.fetch_add(chunk, std::memory_order_relaxed);
          if (b >= n) break;
          const std::int64_t e = b + chunk < n ? b + chunk : n;
          body(b, e, w);
        }
      });
      break;
    }
    case omp_schedule::guided: {
      // Chunk = remaining/nthreads, geometrically decreasing, floored at
      // `chunk`. Claimed with a CAS because the size depends on the cursor.
      alignas(cacheline_size) std::atomic<std::int64_t> next{0};
      pool.run(nthreads, [&](int w) {
        for (;;) {
          std::int64_t b = next.load(std::memory_order_relaxed);
          std::int64_t size = 0;
          do {
            if (b >= n) return;
            const std::int64_t remaining = n - b;
            size = remaining / nthreads;
            if (size < chunk) size = chunk;
            if (size > remaining) size = remaining;
          } while (!next.compare_exchange_weak(b, b + size,
                                               std::memory_order_relaxed));
          body(b, b + size, w);
        }
      });
      break;
    }
  }
}

}  // namespace micg::rt
