// General reducer hyperobjects over user-defined monoids.
//
// §II-B of the paper: "Thread Local Storage and reductions are performed
// through holders and reducers. A user can define her own Thread Local
// Variable by implementing a monoid which allows to define what should
// happen during a steal and a reduce operations." This header provides
// that construct for the micgraph runtime: a Monoid supplies identity()
// and reduce(left, right); the reducer keeps one lazily-created view per
// worker and folds the views on get().
//
// Unlike true Cilk reducers the fold happens at the final get() rather
// than eagerly at steal boundaries, so reduce() must be associative AND
// commutative here (the common case: sums, maxima, bags). Order-sensitive
// reductions (e.g. list concatenation in iteration order) should use
// ordered_list_reducer, which tags appends with a caller-supplied index.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "micg/rt/tls.hpp"

namespace micg::rt {

/// Requirements: `T identity() const` and `T reduce(T, T) const` with
/// reduce associative and commutative.
template <typename T, typename Monoid>
class reducer {
 public:
  reducer(int max_workers, Monoid monoid = Monoid{})
      : monoid_(std::move(monoid)),
        views_(max_workers, [this] { return monoid_.identity(); }) {}

  /// The calling worker's view (create on demand, like a holder).
  T& view() { return views_.local(); }

  /// Fold `value` into the calling worker's view.
  void combine(T value) {
    T& v = views_.local();
    v = monoid_.reduce(std::move(v), std::move(value));
  }

  /// Merge all views. Call only when quiescent.
  [[nodiscard]] T get() {
    T acc = monoid_.identity();
    views_.for_each([&](T& v) { acc = monoid_.reduce(std::move(acc), v); });
    return acc;
  }

  /// Drop all views (next access re-creates from the identity).
  void clear() { views_.clear(); }

 private:
  Monoid monoid_;
  enumerable_thread_specific<T> views_;
};

/// Monoid for sums (the cilk reducer_opadd analogue).
template <typename T>
struct opadd_monoid {
  T identity() const { return T{}; }
  T reduce(T a, T b) const { return a + b; }
};
template <typename T>
using reducer_opadd = reducer<T, opadd_monoid<T>>;

/// Monoid for minima.
template <typename T>
struct min_monoid {
  T init;
  T identity() const { return init; }
  T reduce(T a, T b) const { return std::min(a, b); }
};

/// Unordered container-append monoid (bag semantics).
template <typename T>
struct append_monoid {
  std::vector<T> identity() const { return {}; }
  std::vector<T> reduce(std::vector<T> a, std::vector<T> b) const {
    if (a.size() < b.size()) a.swap(b);
    a.insert(a.end(), b.begin(), b.end());
    return a;
  }
};
template <typename T>
using reducer_append = reducer<std::vector<T>, append_monoid<T>>;

/// Order-preserving list reducer: each append carries the loop index it
/// came from; get() returns elements sorted by that index, recovering the
/// sequential semantics a true Cilk list reducer provides.
template <typename T>
class ordered_list_reducer {
 public:
  explicit ordered_list_reducer(int max_workers) : views_(max_workers) {}

  void append(std::int64_t index, T value) {
    views_.local().emplace_back(index, std::move(value));
  }

  /// All appended values in index order. Call only when quiescent.
  [[nodiscard]] std::vector<T> get() {
    std::vector<std::pair<std::int64_t, T>> all;
    views_.for_each([&](auto& v) {
      all.insert(all.end(), std::make_move_iterator(v.begin()),
                 std::make_move_iterator(v.end()));
    });
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<T> out;
    out.reserve(all.size());
    for (auto& [idx, val] : all) out.push_back(std::move(val));
    return out;
  }

  void clear() { views_.clear(); }

 private:
  enumerable_thread_specific<std::vector<std::pair<std::int64_t, T>>>
      views_;
};

}  // namespace micg::rt
