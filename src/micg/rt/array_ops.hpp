// Data-parallel array operations — the Cilk Plus "array notation" the
// paper's §II-B footnotes (`w[:] = a*x[:]+b*y[:]`), provided as plain
// functions over spans on any exec backend. These are the regular,
// vectorizable counterpoint to the irregular kernels: the compiler
// auto-vectorizes the inner loops (contiguous, restrict-free simple
// form), the runtime parallelizes across chunks.
#pragma once

#include <cmath>
#include <span>

#include "micg/rt/exec.hpp"
#include "micg/rt/parallel_reduce.hpp"
#include "micg/support/assert.hpp"

namespace micg::rt {

/// w[:] = a*x[:] + b*y[:]  (the paper's footnote example, §II-B).
inline void axpby(const exec& e, double a, std::span<const double> x,
                  double b, std::span<const double> y,
                  std::span<double> w) {
  MICG_CHECK(x.size() == y.size() && x.size() == w.size(),
             "axpby: size mismatch");
  const double* px = x.data();
  const double* py = y.data();
  double* pw = w.data();
  for_range(e, static_cast<std::int64_t>(x.size()),
            [&](std::int64_t lo, std::int64_t hi, int) {
              for (std::int64_t i = lo; i < hi; ++i) {
                pw[i] = a * px[i] + b * py[i];
              }
            });
}

/// w[:] = value.
inline void fill(const exec& e, std::span<double> w, double value) {
  double* pw = w.data();
  for_range(e, static_cast<std::int64_t>(w.size()),
            [&](std::int64_t lo, std::int64_t hi, int) {
              for (std::int64_t i = lo; i < hi; ++i) pw[i] = value;
            });
}

/// w[:] *= a.
inline void scale(const exec& e, std::span<double> w, double a) {
  double* pw = w.data();
  for_range(e, static_cast<std::int64_t>(w.size()),
            [&](std::int64_t lo, std::int64_t hi, int) {
              for (std::int64_t i = lo; i < hi; ++i) pw[i] *= a;
            });
}

/// sum(x[:] * y[:]).
inline double dot(const exec& e, std::span<const double> x,
                  std::span<const double> y) {
  MICG_CHECK(x.size() == y.size(), "dot: size mismatch");
  const double* px = x.data();
  const double* py = y.data();
  return parallel_sum<double>(
      e, static_cast<std::int64_t>(x.size()),
      [px, py](std::int64_t lo, std::int64_t hi) {
        double s = 0.0;
        for (std::int64_t i = lo; i < hi; ++i) s += px[i] * py[i];
        return s;
      });
}

/// sqrt(dot(x, x)).
inline double norm2(const exec& e, std::span<const double> x) {
  return std::sqrt(dot(e, x, x));
}

/// w[i] = f(x[i]) — the "user defined elemental function" form (§II-B).
template <typename F>
void map_elemental(const exec& e, std::span<const double> x,
                   std::span<double> w, const F& f) {
  MICG_CHECK(x.size() == w.size(), "map: size mismatch");
  const double* px = x.data();
  double* pw = w.data();
  for_range(e, static_cast<std::int64_t>(x.size()),
            [&](std::int64_t lo, std::int64_t hi, int) {
              for (std::int64_t i = lo; i < hi; ++i) pw[i] = f(px[i]);
            });
}

}  // namespace micg::rt
