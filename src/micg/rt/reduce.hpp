// Deterministic parallel floating-point reduction.
//
// combinable<> reductions group additions by whatever chunks the backend
// hands each worker, so the low bits of the result move with the chunk
// size, the partitioning mode and the scheduler — exactly the knobs the
// auto-tuner (micg::tune) is free to change. deterministic_sum() fixes
// the grouping instead of the schedule: terms are summed sequentially
// within fixed-size index blocks and the block partials are combined in
// block order, so the result is bit-identical across threads, backends,
// chunk sizes and partitioning — tuning can change *when* a block is
// summed, never what the total rounds to. Cost: one O(n/block) partial
// array per call; the block loop still runs through the configured
// backend, so the pass scales like any other for_range.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "micg/rt/exec.hpp"

namespace micg::rt {

/// Terms per deterministic block. Fixed (never derived from exec::chunk)
/// so the summation tree is a pure function of `n`.
inline constexpr std::int64_t deterministic_sum_block = 4096;

/// Sum term(i) for i in [0, n) with a schedule-independent grouping.
/// `term` must be safe to call concurrently for distinct i and is called
/// exactly once per index (side effects per index are fine — pagerank
/// fills its contribution array from the same sweep).
template <typename Term>
double deterministic_sum(const exec& e, std::int64_t n, const Term& term) {
  if (n <= 0) return 0.0;
  const std::int64_t nblocks =
      (n + deterministic_sum_block - 1) / deterministic_sum_block;
  std::vector<double> partial(static_cast<std::size_t>(nblocks), 0.0);
  for_range(e, nblocks, [&](std::int64_t bb, std::int64_t be, int) {
    for (std::int64_t blk = bb; blk < be; ++blk) {
      const std::int64_t lo = blk * deterministic_sum_block;
      const std::int64_t hi = std::min(n, lo + deterministic_sum_block);
      double s = 0.0;
      for (std::int64_t i = lo; i < hi; ++i) s += term(i);
      partial[static_cast<std::size_t>(blk)] = s;
    }
  });
  double total = 0.0;
  for (const double p : partial) total += p;
  return total;
}

}  // namespace micg::rt
