// Sparse matrix-vector product with the graph's adjacency pattern — the
// paper notes the microbenchmark "has data dependencies similar to a sparse
// matrix vector multiplication" (§III-B). y[v] = sum over neighbors w of
// value(v, w) * x[w], where the implicit value is 1 (adjacency) or
// 1/degree(v) (row-stochastic / random-walk matrix).
#pragma once

#include <span>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/rt/exec.hpp"

namespace micg::irregular {

enum class spmv_matrix {
  adjacency,   ///< A[v][w] = 1 for each edge
  random_walk, ///< A[v][w] = 1/degree(v)
};

/// y = A x on the selected backend. Defined for every shipped layout.
template <micg::graph::CsrGraph G>
std::vector<double> spmv(const G& g, std::span<const double> x,
                         const rt::exec& ex,
                         spmv_matrix matrix = spmv_matrix::adjacency);

}  // namespace micg::irregular
