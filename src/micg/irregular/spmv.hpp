// Sparse matrix-vector product with the graph's adjacency pattern — the
// paper notes the microbenchmark "has data dependencies similar to a sparse
// matrix vector multiplication" (§III-B). y[v] = sum over neighbors w of
// value(v, w) * x[w], where the implicit value is 1 (adjacency) or
// 1/degree(v) (row-stochastic / random-walk matrix).
#pragma once

#include <span>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/rt/edge_partition.hpp"
#include "micg/rt/exec.hpp"

namespace micg::irregular {

enum class spmv_matrix {
  adjacency,   ///< A[v][w] = 1 for each edge
  random_walk, ///< A[v][w] = 1/degree(v)
};

struct spmv_options {
  rt::exec ex;
  spmv_matrix matrix = spmv_matrix::adjacency;
  /// Memory-hierarchy fast-path knobs (SIMD gather, prefetch distance,
  /// edge-balanced partitioning). All combinations produce bit-identical
  /// output (tested); rt::scalar_mem_opts() is the pre-optimization path.
  rt::mem_opts mem;
};

/// y = A x on the selected backend. Defined for every shipped layout.
template <micg::graph::CsrGraph G>
std::vector<double> spmv(const G& g, std::span<const double> x,
                         const spmv_options& opt);

/// Convenience overload with default fast-path knobs.
template <micg::graph::CsrGraph G>
std::vector<double> spmv(const G& g, std::span<const double> x,
                         const rt::exec& ex,
                         spmv_matrix matrix = spmv_matrix::adjacency) {
  spmv_options opt;
  opt.ex = ex;
  opt.matrix = matrix;
  return spmv(g, x, opt);
}

}  // namespace micg::irregular
