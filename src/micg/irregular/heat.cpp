#include "micg/irregular/heat.hpp"

#include <algorithm>
#include <utility>

#include "micg/support/assert.hpp"
#include "micg/support/prefetch.hpp"
#include "micg/support/simd.hpp"

namespace micg::irregular {

template <micg::graph::CsrGraph G>
std::vector<double> heat_diffusion(const G& g,
                                   std::span<const double> state,
                                   const heat_options& opt) {
  using VId = typename G::vertex_type;
  using EId = typename G::edge_type;
  const VId n = g.num_vertices();
  MICG_CHECK(static_cast<VId>(state.size()) == n,
             "state size must equal vertex count");
  MICG_CHECK(opt.steps >= 0, "steps must be non-negative");
  MICG_CHECK(opt.alpha > 0.0, "alpha must be positive");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  MICG_CHECK(opt.mem.prefetch_distance >= 0,
             "prefetch distance must be non-negative");

  const EId* xadj = g.xadj().data();
  const VId* adj = g.adj().data();
  const auto dist = static_cast<EId>(opt.mem.prefetch_distance);
  const bool vec = opt.mem.simd;

  std::vector<double> cur(state.begin(), state.end());
  std::vector<double> next(cur.size());
  for (int s = 0; s < opt.steps; ++s) {
    const double* src = cur.data();
    double* dst = next.data();
    rt::for_range_graph(
        opt.ex, n, xadj, opt.mem.partition,
        [&](std::int64_t b, std::int64_t e, int) {
          EId pf = xadj[b];
          const EId chunk_end = xadj[e];
          for (std::int64_t i = b; i < e; ++i) {
            const EId rb = xadj[i];
            const EId re = xadj[i + 1];
            if (dist > 0) {
              const EId ahead = std::min<EId>(re + dist, chunk_end);
              for (; pf < ahead; ++pf) {
                prefetch_read(src + static_cast<std::size_t>(adj[pf]));
              }
            }
            // sum_w (src[w] - src[i]) = gather_sum - deg*src[i]; the
            // gathered sum is the only reassociated term, so the result
            // is identical across all knob combinations.
            const double sum = simd::gather_sum(
                src, adj + rb, static_cast<std::size_t>(re - rb), vec);
            const double acc =
                sum - static_cast<double>(re - rb) * src[i];
            dst[i] = src[i] + opt.alpha * acc;
          }
        });
    std::swap(cur, next);
  }
  return cur;
}

#define MICG_INSTANTIATE(G)                       \
  template std::vector<double> heat_diffusion<G>( \
      const G&, std::span<const double>, const heat_options&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::irregular
