#include "micg/irregular/heat.hpp"

#include <utility>

#include "micg/support/assert.hpp"

namespace micg::irregular {

using micg::graph::csr_graph;
using micg::graph::vertex_t;

std::vector<double> heat_diffusion(const csr_graph& g,
                                   std::span<const double> state,
                                   const heat_options& opt) {
  const vertex_t n = g.num_vertices();
  MICG_CHECK(static_cast<vertex_t>(state.size()) == n,
             "state size must equal vertex count");
  MICG_CHECK(opt.steps >= 0, "steps must be non-negative");
  MICG_CHECK(opt.alpha > 0.0, "alpha must be positive");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");

  std::vector<double> cur(state.begin(), state.end());
  std::vector<double> next(cur.size());
  for (int s = 0; s < opt.steps; ++s) {
    const double* src = cur.data();
    double* dst = next.data();
    rt::for_range(opt.ex, n, [&](std::int64_t b, std::int64_t e, int) {
      for (std::int64_t i = b; i < e; ++i) {
        const auto v = static_cast<vertex_t>(i);
        double acc = 0.0;
        for (vertex_t w : g.neighbors(v)) {
          acc += src[static_cast<std::size_t>(w)] - src[i];
        }
        dst[i] = src[i] + opt.alpha * acc;
      }
    });
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace micg::irregular
