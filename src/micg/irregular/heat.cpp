#include "micg/irregular/heat.hpp"

#include <utility>

#include "micg/support/assert.hpp"

namespace micg::irregular {

template <micg::graph::CsrGraph G>
std::vector<double> heat_diffusion(const G& g,
                                   std::span<const double> state,
                                   const heat_options& opt) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  MICG_CHECK(static_cast<VId>(state.size()) == n,
             "state size must equal vertex count");
  MICG_CHECK(opt.steps >= 0, "steps must be non-negative");
  MICG_CHECK(opt.alpha > 0.0, "alpha must be positive");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");

  std::vector<double> cur(state.begin(), state.end());
  std::vector<double> next(cur.size());
  for (int s = 0; s < opt.steps; ++s) {
    const double* src = cur.data();
    double* dst = next.data();
    rt::for_range(opt.ex, n, [&](std::int64_t b, std::int64_t e, int) {
      for (std::int64_t i = b; i < e; ++i) {
        const auto v = static_cast<VId>(i);
        double acc = 0.0;
        for (VId w : g.neighbors(v)) {
          acc += src[static_cast<std::size_t>(w)] - src[i];
        }
        dst[i] = src[i] + opt.alpha * acc;
      }
    });
    std::swap(cur, next);
  }
  return cur;
}

#define MICG_INSTANTIATE(G)                       \
  template std::vector<double> heat_diffusion<G>( \
      const G&, std::span<const double>, const heat_options&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::irregular
