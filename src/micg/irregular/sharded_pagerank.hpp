// Bulk-synchronous sharded PageRank.
//
// Power iteration over a graph::sharded_csr: each shard updates its owned
// rows on its own thread pool and the rounds exchange *contributions*
// (rank/degree of every boundary vertex) through the static halo lists —
// one linear gather into a mailbox per shard pair, one linear scatter out.
//
// Reproducibility: the shard remap is monotone (graph/shard.hpp), so an
// owned row's local adjacency enumerates the same neighbors in the same
// order as the global CSR, and the per-row gather sums are bit-identical
// to the single-shard kernel. The only reassociated sums are the global
// dangling mass and the convergence delta (per-shard partials combined in
// shard order instead of worker order), which is why the parity guarantee
// is <= 1e-12 rather than bitwise (the property tests pin it).
#pragma once

#include "micg/graph/shard.hpp"
#include "micg/irregular/pagerank.hpp"

namespace micg::irregular {

/// Run BSP PageRank over a partitioned graph. `opt.ex.threads` workers
/// per shard; all other options mean what they mean for pagerank().
/// Ranks match the single-shard kernel to <= 1e-12 at equal iteration
/// counts, and the iteration/convergence trajectory is identical.
pagerank_result sharded_pagerank(const graph::sharded_csr& sg,
                                 const pagerank_options& opt);

}  // namespace micg::irregular
