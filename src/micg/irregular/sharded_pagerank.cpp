#include "micg/irregular/sharded_pagerank.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "micg/obs/obs.hpp"
#include "micg/rt/shard_exec.hpp"
#include "micg/rt/tls.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/prefetch.hpp"
#include "micg/support/simd.hpp"

namespace micg::irregular {

pagerank_result sharded_pagerank(const graph::sharded_csr& sg,
                                 const pagerank_options& opt) {
  const std::int64_t n = sg.num_vertices();
  MICG_CHECK(n > 0, "pagerank needs a non-empty graph");
  MICG_CHECK(opt.damping > 0.0 && opt.damping < 1.0,
             "damping must be in (0, 1)");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  MICG_CHECK(opt.mem.prefetch_distance >= 0,
             "prefetch distance must be non-negative");
  const int shards = sg.shards();

  rt::shard_group group(shards, opt.ex);
  // One staging lane per shard pair: the halo gather is a serial linear
  // copy per pair, so per-worker lanes would only fragment it.
  rt::mailbox_grid<double> mail(shards, 1);

  const double init = 1.0 / static_cast<double>(n);
  // Shard-local arrays over local ids. rank/next are maintained on the
  // owned range only; contrib covers the whole local space — the owned
  // part computed here, the ghost part scattered in from the mailboxes.
  std::vector<std::vector<double>> rank(static_cast<std::size_t>(shards));
  std::vector<std::vector<double>> next(static_cast<std::size_t>(shards));
  std::vector<std::vector<double>> contrib(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    const auto nl = static_cast<std::size_t>(sg.part(s).num_local());
    rank[static_cast<std::size_t>(s)].assign(nl, init);
    next[static_cast<std::size_t>(s)].assign(nl, 0.0);
    contrib[static_cast<std::size_t>(s)].assign(nl, 0.0);
  }

  // Per-shard partials, published before / read after a barrier. Every
  // shard folds them in the same (shard-index) order, so all shards see
  // the same dangling mass, the same delta, and make the same
  // continue/stop decision each iteration.
  std::vector<double> dangling_parts(static_cast<std::size_t>(shards), 0.0);
  std::vector<double> delta_parts(static_cast<std::size_t>(shards), 0.0);
  std::uint64_t exchanged_total = 0;
  pagerank_result r;

  group.run([&](int s) {
    const graph::shard_part& p = sg.part(s);
    rt::exec ex = group.shard_exec(s);
    auto& rk = rank[static_cast<std::size_t>(s)];
    auto& nx = next[static_cast<std::size_t>(s)];
    auto& ct = contrib[static_cast<std::size_t>(s)];
    const std::int64_t owned_lo = p.owned_local_begin;
    const std::int64_t owned_hi = owned_lo + p.num_owned();
    rt::combinable<double> dangling_acc(ex.threads);
    rt::combinable<double> delta_acc(ex.threads);

    p.csr.visit([&](const auto& sc) {
      using EId = typename std::decay_t<decltype(sc)>::edge_type;
      const EId* xadj = sc.xadj().data();
      const auto* adj = sc.adj().data();
      const auto dist = static_cast<EId>(opt.mem.prefetch_distance);
      const bool vec = opt.mem.simd;

      int iterations = 0;
      bool converged = false;
      double final_delta = 0.0;
      for (iterations = 0; iterations < opt.max_iterations; ++iterations) {
        // Contribution pass over the owned rows. Local degree equals
        // global degree there (the packing keeps owned rows complete),
        // so contrib values are bitwise those of the unsharded kernel.
        dangling_acc.clear();
        rt::for_range(
            ex, p.num_owned(), [&](std::int64_t b, std::int64_t e, int) {
              double local = 0.0;
              for (std::int64_t i = b; i < e; ++i) {
                const std::int64_t lv = owned_lo + i;
                const EId deg = xadj[lv + 1] - xadj[lv];
                const double rank_v = rk[static_cast<std::size_t>(lv)];
                if (deg == 0) {
                  local += rank_v;
                  ct[static_cast<std::size_t>(lv)] = 0.0;
                } else {
                  ct[static_cast<std::size_t>(lv)] =
                      rank_v / static_cast<double>(deg);
                }
              }
              dangling_acc.local() += local;
            });
        dangling_parts[static_cast<std::size_t>(s)] = dangling_acc.combine(
            0.0, [](double a, double b) { return a + b; });

        // Stage the halo: the contribution of every owned boundary vertex
        // shard t reads, in the shared (ascending global) halo order.
        for (int t = 0; t < shards; ++t) {
          auto& out = mail.outbox(s, t, 0);
          for (const std::int64_t lv :
               p.send_local[static_cast<std::size_t>(t)]) {
            out.push_back(ct[static_cast<std::size_t>(lv)]);
          }
        }

        // Barrier 1: publish the staged halos.
        group.barrier().arrive_and_wait(
            s == 0 ? std::function<void()>([&] {
              mail.swap();
              exchanged_total += mail.last_swap_messages();
            })
                   : std::function<void()>());

        // Scatter the received halos into the ghost contrib slots; the
        // recv list mirrors the sender's order element for element.
        for (int t = 0; t < shards; ++t) {
          auto& in = mail.inbox(t, s, 0);
          const auto& recv = p.recv_local[static_cast<std::size_t>(t)];
          MICG_ASSERT(in.size() == recv.size());
          for (std::size_t i = 0; i < in.size(); ++i) {
            ct[static_cast<std::size_t>(recv[i])] = in[i];
          }
          in.clear();
        }
        double dangling = 0.0;
        for (double d : dangling_parts) dangling += d;
        const double base =
            (1.0 - opt.damping) / static_cast<double>(n) +
            opt.damping * dangling / static_cast<double>(n);

        // Gather pass: same loop body as the single-shard kernel, over
        // the local rows, skipping ghost rows (their partial adjacency
        // is only there to close the packing; they are never sources).
        delta_acc.clear();
        const double* src = ct.data();
        rt::for_range_graph(
            ex, p.num_local(), xadj, opt.mem.partition,
            [&](std::int64_t b, std::int64_t e, int) {
              double local_delta = 0.0;
              EId pf = xadj[b];
              const EId chunk_end = xadj[e];
              for (std::int64_t i = b; i < e; ++i) {
                if (i < owned_lo || i >= owned_hi) continue;
                const EId rb = xadj[i];
                const EId re = xadj[i + 1];
                if (dist > 0) {
                  const EId ahead = std::min<EId>(re + dist, chunk_end);
                  for (pf = std::max<EId>(pf, rb); pf < ahead; ++pf) {
                    prefetch_read(src + static_cast<std::size_t>(adj[pf]));
                  }
                }
                const double sum = simd::gather_sum(
                    src, adj + rb, static_cast<std::size_t>(re - rb), vec);
                const double nv = base + opt.damping * sum;
                local_delta += std::abs(nv - rk[static_cast<std::size_t>(i)]);
                nx[static_cast<std::size_t>(i)] = nv;
              }
              delta_acc.local() += local_delta;
            });
        delta_parts[static_cast<std::size_t>(s)] = delta_acc.combine(
            0.0, [](double a, double b) { return a + b; });

        // Barrier 2: publish the deltas; it also fences the drained
        // mailbox buffers before the next iteration restages them.
        group.barrier().arrive_and_wait();

        final_delta = 0.0;
        for (double d : delta_parts) final_delta += d;
        rk.swap(nx);
        if (final_delta < opt.tolerance) {
          converged = true;
          ++iterations;
          break;
        }
      }
      if (s == 0) {
        r.iterations = iterations;
        r.converged = converged;
        r.final_delta = final_delta;
      }
    });
  });

  // Assemble the global rank vector from the owned slices.
  r.rank.assign(static_cast<std::size_t>(n), 0.0);
  for (int s = 0; s < shards; ++s) {
    const graph::shard_part& p = sg.part(s);
    const auto& rk = rank[static_cast<std::size_t>(s)];
    for (std::int64_t v = p.owned_begin; v < p.owned_end; ++v) {
      r.rank[static_cast<std::size_t>(v)] = rk[static_cast<std::size_t>(
          p.owned_local_begin + (v - p.owned_begin))];
    }
  }

  if (obs::recorder* rec = opt.ex.sink(); rec != nullptr) {
    rec->set_meta("kernel", "sharded_pagerank");
    rec->set_meta("converged", r.converged ? "true" : "false");
    rec->set_value("shard.count", static_cast<double>(shards));
    rec->set_value("shard.cut_edges", static_cast<double>(sg.cut_edges()));
    rec->get_counter("shard.exchange.messages").add(0, exchanged_total);
    rec->get_counter("pagerank.iterations")
        .add(0, static_cast<std::uint64_t>(r.iterations));
    rec->set_value("pagerank.final_delta", r.final_delta);
  }
  return r;
}

}  // namespace micg::irregular
