// Jacobi heat diffusion on a graph — the paper's other named abstraction
// target ("Heat Equation solvers", §III-B). Explicit Euler step on the
// graph Laplacian:
//
//   u'(v) = u(v) + alpha * sum_{w in adj(v)} (u(w) - u(v))
//
// The Laplacian is symmetric, so total heat is conserved exactly (a tested
// invariant) and the state converges to the component-wise mean for
// alpha < 1 / Delta.
#pragma once

#include <span>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/rt/edge_partition.hpp"
#include "micg/rt/exec.hpp"

namespace micg::irregular {

struct heat_options {
  rt::exec ex;
  double alpha = 0.1;  ///< step size; stable when alpha * Delta < 1
  int steps = 1;
  /// Memory-hierarchy fast-path knobs; every combination yields
  /// bit-identical states (tested).
  rt::mem_opts mem;
};

/// Run `steps` diffusion steps from `state` and return the result.
/// Defined for every shipped layout.
template <micg::graph::CsrGraph G>
std::vector<double> heat_diffusion(const G& g,
                                   std::span<const double> state,
                                   const heat_options& opt);

}  // namespace micg::irregular
