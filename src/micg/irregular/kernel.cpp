#include "micg/irregular/kernel.hpp"

#include "micg/obs/obs.hpp"
#include "micg/support/assert.hpp"

namespace micg::irregular {

namespace {

/// One vertex update: `iterations` rounds of averaging over the (fixed)
/// neighbor states read through `read`.
template <micg::graph::CsrGraph G, typename Read>
double update_vertex(const G& g, typename G::vertex_type v, int iterations,
                     const Read& read) {
  using VId = typename G::vertex_type;
  double mine = read(v);
  const auto nbrs = g.neighbors(v);
  const double inv = 1.0 / (static_cast<double>(nbrs.size()) + 1.0);
  for (int i = 0; i < iterations; ++i) {
    double sum = mine;
    for (VId w : nbrs) sum += read(w);
    mine = sum * inv;
  }
  return mine;
}

}  // namespace

template <micg::graph::CsrGraph G>
std::vector<double> irregular_kernel(const G& g,
                                     std::span<const double> state,
                                     const kernel_options& opt) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  MICG_CHECK(static_cast<VId>(state.size()) == n,
             "state size must equal vertex count");
  MICG_CHECK(opt.iterations >= 1, "need at least one iteration");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");

  obs::recorder* rec = opt.ex.sink();
  obs::counter* updates_ctr =
      rec != nullptr ? &rec->get_counter("irregular.vertex_updates")
                     : nullptr;
  obs::span sweep_span =
      rec != nullptr ? rec->start_span("irregular.sweep") : obs::span();
  sweep_span.value("iterations", static_cast<double>(opt.iterations));
  if (rec != nullptr) {
    rec->set_meta("kernel", "irregular_kernel");
    rec->set_meta("mode",
                  opt.mode == kernel_mode::in_place ? "in_place" : "jacobi");
    rec->set_meta("backend", rt::backend_name(opt.ex.kind));
  }

  std::vector<double> out(state.begin(), state.end());
  if (opt.mode == kernel_mode::in_place) {
    // Algorithm 5: concurrent reads of `out` while it is updated. The
    // races are benign for the benchmark's purpose (every write is a
    // convex combination of current values).
    double* data = out.data();
    rt::for_range(opt.ex, n, [&](std::int64_t b, std::int64_t e, int worker) {
      if (updates_ctr != nullptr) {
        updates_ctr->add(worker, static_cast<std::uint64_t>(e - b));
      }
      for (std::int64_t i = b; i < e; ++i) {
        const auto v = static_cast<VId>(i);
        data[i] = update_vertex(g, v, opt.iterations, [data](VId w) {
          return data[static_cast<std::size_t>(w)];
        });
      }
    });
  } else {
    const double* src = state.data();
    double* dst = out.data();
    rt::for_range(opt.ex, n, [&](std::int64_t b, std::int64_t e, int worker) {
      if (updates_ctr != nullptr) {
        updates_ctr->add(worker, static_cast<std::uint64_t>(e - b));
      }
      for (std::int64_t i = b; i < e; ++i) {
        const auto v = static_cast<VId>(i);
        dst[i] = update_vertex(g, v, opt.iterations, [src](VId w) {
          return src[static_cast<std::size_t>(w)];
        });
      }
    });
  }
  return out;
}

template <micg::graph::CsrGraph G>
std::vector<double> irregular_kernel_seq(const G& g,
                                         std::span<const double> state,
                                         int iterations) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  MICG_CHECK(static_cast<VId>(state.size()) == n,
             "state size must equal vertex count");
  std::vector<double> out(state.begin(), state.end());
  for (VId v = 0; v < n; ++v) {
    out[static_cast<std::size_t>(v)] =
        update_vertex(g, v, iterations, [&out](VId w) {
          return out[static_cast<std::size_t>(w)];
        });
  }
  return out;
}

#define MICG_INSTANTIATE(G)                          \
  template std::vector<double> irregular_kernel<G>(  \
      const G&, std::span<const double>, const kernel_options&); \
  template std::vector<double> irregular_kernel_seq<G>(          \
      const G&, std::span<const double>, int);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::irregular
