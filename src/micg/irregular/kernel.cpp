#include "micg/irregular/kernel.hpp"

#include "micg/obs/obs.hpp"
#include "micg/support/assert.hpp"

namespace micg::irregular {

using micg::graph::csr_graph;
using micg::graph::vertex_t;

namespace {

/// One vertex update: `iterations` rounds of averaging over the (fixed)
/// neighbor states read through `read`.
template <typename Read>
double update_vertex(const csr_graph& g, vertex_t v, int iterations,
                     const Read& read) {
  double mine = read(v);
  const auto nbrs = g.neighbors(v);
  const double inv = 1.0 / (static_cast<double>(nbrs.size()) + 1.0);
  for (int i = 0; i < iterations; ++i) {
    double sum = mine;
    for (vertex_t w : nbrs) sum += read(w);
    mine = sum * inv;
  }
  return mine;
}

}  // namespace

std::vector<double> irregular_kernel(const csr_graph& g,
                                     std::span<const double> state,
                                     const kernel_options& opt) {
  const vertex_t n = g.num_vertices();
  MICG_CHECK(static_cast<vertex_t>(state.size()) == n,
             "state size must equal vertex count");
  MICG_CHECK(opt.iterations >= 1, "need at least one iteration");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");

  obs::recorder* rec = opt.ex.sink();
  obs::counter* updates_ctr =
      rec != nullptr ? &rec->get_counter("irregular.vertex_updates")
                     : nullptr;
  obs::span sweep_span =
      rec != nullptr ? rec->start_span("irregular.sweep") : obs::span();
  sweep_span.value("iterations", static_cast<double>(opt.iterations));
  if (rec != nullptr) {
    rec->set_meta("kernel", "irregular_kernel");
    rec->set_meta("mode",
                  opt.mode == kernel_mode::in_place ? "in_place" : "jacobi");
    rec->set_meta("backend", rt::backend_name(opt.ex.kind));
  }

  std::vector<double> out(state.begin(), state.end());
  if (opt.mode == kernel_mode::in_place) {
    // Algorithm 5: concurrent reads of `out` while it is updated. The
    // races are benign for the benchmark's purpose (every write is a
    // convex combination of current values).
    double* data = out.data();
    rt::for_range(opt.ex, n, [&](std::int64_t b, std::int64_t e, int worker) {
      if (updates_ctr != nullptr) {
        updates_ctr->add(worker, static_cast<std::uint64_t>(e - b));
      }
      for (std::int64_t i = b; i < e; ++i) {
        const auto v = static_cast<vertex_t>(i);
        data[i] = update_vertex(g, v, opt.iterations, [data](vertex_t w) {
          return data[static_cast<std::size_t>(w)];
        });
      }
    });
  } else {
    const double* src = state.data();
    double* dst = out.data();
    rt::for_range(opt.ex, n, [&](std::int64_t b, std::int64_t e, int worker) {
      if (updates_ctr != nullptr) {
        updates_ctr->add(worker, static_cast<std::uint64_t>(e - b));
      }
      for (std::int64_t i = b; i < e; ++i) {
        const auto v = static_cast<vertex_t>(i);
        dst[i] = update_vertex(g, v, opt.iterations, [src](vertex_t w) {
          return src[static_cast<std::size_t>(w)];
        });
      }
    });
  }
  return out;
}

std::vector<double> irregular_kernel_seq(const csr_graph& g,
                                         std::span<const double> state,
                                         int iterations) {
  const vertex_t n = g.num_vertices();
  MICG_CHECK(static_cast<vertex_t>(state.size()) == n,
             "state size must equal vertex count");
  std::vector<double> out(state.begin(), state.end());
  for (vertex_t v = 0; v < n; ++v) {
    out[static_cast<std::size_t>(v)] =
        update_vertex(g, v, iterations, [&out](vertex_t w) {
          return out[static_cast<std::size_t>(w)];
        });
  }
  return out;
}

}  // namespace micg::irregular
