#include "micg/irregular/kernel.hpp"

#include <algorithm>

#include "micg/obs/obs.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/prefetch.hpp"
#include "micg/support/simd.hpp"

namespace micg::irregular {

namespace {

/// One vertex update: `iterations` rounds of averaging over the (fixed)
/// neighbor states read from `read` (the racing buffer in in_place mode,
/// the previous snapshot in jacobi mode). The neighbor sum goes through
/// the striped gather so the result is ISA-independent.
template <class VId>
double update_vertex(const double* read, double mine, const VId* row,
                     std::size_t deg, int iterations, bool vec) {
  const double inv = 1.0 / (static_cast<double>(deg) + 1.0);
  for (int i = 0; i < iterations; ++i) {
    const double sum = mine + simd::gather_sum(read, row, deg, vec);
    mine = sum * inv;
  }
  return mine;
}

}  // namespace

template <micg::graph::CsrGraph G>
std::vector<double> irregular_kernel(const G& g,
                                     std::span<const double> state,
                                     const kernel_options& opt) {
  using VId = typename G::vertex_type;
  using EId = typename G::edge_type;
  const VId n = g.num_vertices();
  MICG_CHECK(static_cast<VId>(state.size()) == n,
             "state size must equal vertex count");
  MICG_CHECK(opt.iterations >= 1, "need at least one iteration");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  MICG_CHECK(opt.mem.prefetch_distance >= 0,
             "prefetch distance must be non-negative");

  obs::recorder* rec = opt.ex.sink();
  obs::counter* updates_ctr =
      rec != nullptr ? &rec->get_counter("irregular.vertex_updates")
                     : nullptr;
  obs::span sweep_span =
      rec != nullptr ? rec->start_span("irregular.sweep") : obs::span();
  sweep_span.value("iterations", static_cast<double>(opt.iterations));
  if (rec != nullptr) {
    rec->set_meta("kernel", "irregular_kernel");
    rec->set_meta("mode",
                  opt.mode == kernel_mode::in_place ? "in_place" : "jacobi");
    rec->set_meta("backend", rt::backend_name(opt.ex.kind));
    rec->set_meta("partition", rt::partition_mode_name(opt.mem.partition));
    rec->set_meta("simd", opt.mem.simd && simd::vectorized() ? simd::isa_name()
                                                             : "scalar");
    rec->set_value("mem.prefetch_distance",
                   static_cast<double>(opt.mem.prefetch_distance));
  }

  const EId* xadj = g.xadj().data();
  const VId* adj = g.adj().data();
  const auto dist = static_cast<EId>(opt.mem.prefetch_distance);
  const bool vec = opt.mem.simd;

  std::vector<double> out(state.begin(), state.end());
  // Algorithm 5 (in_place): concurrent reads of `out` while it is updated.
  // The races are benign for the benchmark's purpose (every write is a
  // convex combination of current values). Jacobi reads the snapshot.
  const double* read =
      opt.mode == kernel_mode::in_place ? out.data() : state.data();
  double* dst = out.data();
  rt::for_range_graph(
      opt.ex, n, xadj, opt.mem.partition,
      [&](std::int64_t b, std::int64_t e, int worker) {
        if (updates_ctr != nullptr) {
          updates_ctr->add(worker, static_cast<std::uint64_t>(e - b));
        }
        EId pf = xadj[b];
        const EId chunk_end = xadj[e];
        for (std::int64_t i = b; i < e; ++i) {
          const EId rb = xadj[i];
          const EId re = xadj[i + 1];
          if (dist > 0) {
            const EId ahead = std::min<EId>(re + dist, chunk_end);
            for (; pf < ahead; ++pf) {
              prefetch_read(read + static_cast<std::size_t>(adj[pf]));
            }
          }
          dst[i] = update_vertex(read, read[i], adj + rb,
                                 static_cast<std::size_t>(re - rb),
                                 opt.iterations, vec);
        }
      });
  return out;
}

template <micg::graph::CsrGraph G>
std::vector<double> irregular_kernel_seq(const G& g,
                                         std::span<const double> state,
                                         int iterations) {
  using VId = typename G::vertex_type;
  using EId = typename G::edge_type;
  const VId n = g.num_vertices();
  MICG_CHECK(static_cast<VId>(state.size()) == n,
             "state size must equal vertex count");
  const EId* xadj = g.xadj().data();
  const VId* adj = g.adj().data();
  std::vector<double> out(state.begin(), state.end());
  for (VId v = 0; v < n; ++v) {
    const auto i = static_cast<std::size_t>(v);
    const EId rb = xadj[i];
    const EId re = xadj[i + 1];
    out[i] = update_vertex(out.data(), out[i], adj + rb,
                           static_cast<std::size_t>(re - rb), iterations,
                           /*vec=*/true);
  }
  return out;
}

#define MICG_INSTANTIATE(G)                          \
  template std::vector<double> irregular_kernel<G>(  \
      const G&, std::span<const double>, const kernel_options&); \
  template std::vector<double> irregular_kernel_seq<G>(          \
      const G&, std::span<const double>, int);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::irregular
