// Irregular-computation microbenchmark — Algorithm 5 of the paper.
//
// Each vertex holds a double; one kernel application replaces the state of
// every vertex with the average of itself and its neighbors, repeated
// `iterations` times *per vertex* inside the vertex loop (the paper's knob
// for the computation-to-communication ratio: memory traffic is one sweep
// of the adjacency, FLOPs scale with `iterations`).
//
// Two modes:
//  * in_place (the paper's Algorithm 5): updates race benignly against
//    neighbor reads, like a chaotic relaxation sweep. Nondeterministic
//    under real parallelism but always a convex combination of previous
//    states, so min/max bounds are preserved (tested).
//  * jacobi: reads from the previous snapshot, writes a fresh buffer;
//    deterministic, used as the correctness reference and by the heat
//    solver.
#pragma once

#include <span>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/rt/edge_partition.hpp"
#include "micg/rt/exec.hpp"

namespace micg::irregular {

enum class kernel_mode {
  in_place,  ///< Algorithm 5 verbatim (benign races)
  jacobi,    ///< double-buffered, deterministic
};

struct kernel_options {
  rt::exec ex;
  int iterations = 1;  ///< the paper sweeps {1, 3, 5, 10}
  kernel_mode mode = kernel_mode::in_place;
  /// Memory-hierarchy fast-path knobs; in jacobi mode every combination
  /// yields bit-identical states (tested; in_place races are benign but
  /// nondeterministic regardless of knobs).
  rt::mem_opts mem;
};

/// Apply the kernel to `state` (size |V|) and return the new state.
/// Defined for every shipped layout.
template <micg::graph::CsrGraph G>
std::vector<double> irregular_kernel(const G& g,
                                     std::span<const double> state,
                                     const kernel_options& opt);

/// Sequential reference (natural order, in-place), for 1-thread equality
/// tests and the trace generator.
template <micg::graph::CsrGraph G>
std::vector<double> irregular_kernel_seq(const G& g,
                                         std::span<const double> state,
                                         int iterations);

}  // namespace micg::irregular
