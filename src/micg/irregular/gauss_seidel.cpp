#include "micg/irregular/gauss_seidel.hpp"

#include <algorithm>

#include "micg/color/verify.hpp"
#include "micg/support/assert.hpp"

namespace micg::irregular {

using micg::graph::csr_graph;
using micg::graph::vertex_t;

namespace {

/// Group vertices by color class, classes ordered by color value,
/// vertices in id order within a class.
std::vector<std::vector<vertex_t>> color_classes(const csr_graph& g,
                                                 std::span<const int> color) {
  MICG_CHECK(micg::color::is_valid_coloring(g, color),
             "colored_gauss_seidel requires a valid coloring");
  const int num_colors = micg::color::count_colors(color);
  std::vector<std::vector<vertex_t>> classes(
      static_cast<std::size_t>(num_colors));
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    classes[static_cast<std::size_t>(color[static_cast<std::size_t>(v)]) -
            1]
        .push_back(v);
  }
  return classes;
}

inline void relax(const csr_graph& g, double* x, vertex_t v,
                  double self_weight) {
  double sum = self_weight * x[v];
  for (vertex_t w : g.neighbors(v)) sum += x[w];
  x[v] = sum / (self_weight + static_cast<double>(g.degree(v)));
}

}  // namespace

std::vector<double> colored_gauss_seidel(const csr_graph& g,
                                         std::span<const int> color,
                                         std::span<const double> state,
                                         const gauss_seidel_options& opt) {
  MICG_CHECK(static_cast<vertex_t>(state.size()) == g.num_vertices(),
             "state size must equal vertex count");
  MICG_CHECK(opt.sweeps >= 0, "sweeps must be non-negative");
  MICG_CHECK(opt.self_weight > 0.0, "self weight must be positive");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");

  const auto classes = color_classes(g, color);
  std::vector<double> x(state.begin(), state.end());
  double* data = x.data();
  for (int s = 0; s < opt.sweeps; ++s) {
    for (const auto& cls : classes) {
      // Within a class no two vertices are adjacent: every relax reads
      // only out-of-class values, so parallel in-place updates are exact.
      rt::for_range(opt.ex, static_cast<std::int64_t>(cls.size()),
                    [&](std::int64_t b, std::int64_t e, int) {
                      for (std::int64_t i = b; i < e; ++i) {
                        relax(g, data, cls[static_cast<std::size_t>(i)],
                              opt.self_weight);
                      }
                    });
    }
  }
  return x;
}

std::vector<double> gauss_seidel_seq(const csr_graph& g,
                                     std::span<const int> color,
                                     std::span<const double> state,
                                     int sweeps, double self_weight) {
  const auto classes = color_classes(g, color);
  std::vector<double> x(state.begin(), state.end());
  for (int s = 0; s < sweeps; ++s) {
    for (const auto& cls : classes) {
      for (vertex_t v : cls) relax(g, x.data(), v, self_weight);
    }
  }
  return x;
}

}  // namespace micg::irregular
