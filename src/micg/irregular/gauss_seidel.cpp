#include "micg/irregular/gauss_seidel.hpp"

#include <algorithm>

#include "micg/color/verify.hpp"
#include "micg/support/assert.hpp"

namespace micg::irregular {

namespace {

/// Group vertices by color class, classes ordered by color value,
/// vertices in id order within a class.
template <micg::graph::CsrGraph G>
std::vector<std::vector<typename G::vertex_type>> color_classes(
    const G& g, std::span<const int> color) {
  using VId = typename G::vertex_type;
  MICG_CHECK(micg::color::is_valid_coloring(g, color),
             "colored_gauss_seidel requires a valid coloring");
  const int num_colors = micg::color::count_colors(color);
  std::vector<std::vector<VId>> classes(
      static_cast<std::size_t>(num_colors));
  for (VId v = 0; v < g.num_vertices(); ++v) {
    classes[static_cast<std::size_t>(color[static_cast<std::size_t>(v)]) -
            1]
        .push_back(v);
  }
  return classes;
}

template <micg::graph::CsrGraph G>
inline void relax(const G& g, double* x, typename G::vertex_type v,
                  double self_weight) {
  using VId = typename G::vertex_type;
  double sum = self_weight * x[v];
  for (VId w : g.neighbors(v)) sum += x[w];
  x[v] = sum / (self_weight + static_cast<double>(g.degree(v)));
}

}  // namespace

template <micg::graph::CsrGraph G>
std::vector<double> colored_gauss_seidel(const G& g,
                                         std::span<const int> color,
                                         std::span<const double> state,
                                         const gauss_seidel_options& opt) {
  using VId = typename G::vertex_type;
  MICG_CHECK(static_cast<VId>(state.size()) == g.num_vertices(),
             "state size must equal vertex count");
  MICG_CHECK(opt.sweeps >= 0, "sweeps must be non-negative");
  MICG_CHECK(opt.self_weight > 0.0, "self weight must be positive");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");

  const auto classes = color_classes(g, color);
  std::vector<double> x(state.begin(), state.end());
  double* data = x.data();
  for (int s = 0; s < opt.sweeps; ++s) {
    for (const auto& cls : classes) {
      // Within a class no two vertices are adjacent: every relax reads
      // only out-of-class values, so parallel in-place updates are exact.
      rt::for_range(opt.ex, static_cast<std::int64_t>(cls.size()),
                    [&](std::int64_t b, std::int64_t e, int) {
                      for (std::int64_t i = b; i < e; ++i) {
                        relax(g, data, cls[static_cast<std::size_t>(i)],
                              opt.self_weight);
                      }
                    });
    }
  }
  return x;
}

template <micg::graph::CsrGraph G>
std::vector<double> gauss_seidel_seq(const G& g, std::span<const int> color,
                                     std::span<const double> state,
                                     int sweeps, double self_weight) {
  using VId = typename G::vertex_type;
  const auto classes = color_classes(g, color);
  std::vector<double> x(state.begin(), state.end());
  for (int s = 0; s < sweeps; ++s) {
    for (const auto& cls : classes) {
      for (VId v : cls) relax(g, x.data(), v, self_weight);
    }
  }
  return x;
}

#define MICG_INSTANTIATE(G)                             \
  template std::vector<double> colored_gauss_seidel<G>( \
      const G&, std::span<const int>, std::span<const double>, \
      const gauss_seidel_options&);                     \
  template std::vector<double> gauss_seidel_seq<G>(     \
      const G&, std::span<const int>, std::span<const double>, int, double);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::irregular
