// Colored Gauss–Seidel smoothing — the paper's §I motivation made
// concrete: a coloring partitions the vertices into independent sets, so
// an in-place relaxation sweep can run each color class fully in parallel
// with no locks and still produce the *exact* result of a sequential
// sweep over the same schedule ("partition the tasks into sets that can
// be safely computed in parallel"; fewer colors = fewer synchronization
// points).
#pragma once

#include <span>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/rt/exec.hpp"

namespace micg::irregular {

struct gauss_seidel_options {
  rt::exec ex;
  int sweeps = 1;
  /// Weight of the vertex's own value in the relaxation
  /// x[v] <- (self_weight*x[v] + sum_w x[w]) / (self_weight + deg(v)).
  double self_weight = 2.0;
};

/// In-place colored Gauss–Seidel: `color` must be a valid distance-1
/// coloring of `g` (1-based; checked). Returns the relaxed state.
/// Deterministic: equals the sequential sweep in (color, vertex-id) order
/// bit-for-bit, for any thread count. Defined for every shipped layout.
template <micg::graph::CsrGraph G>
std::vector<double> colored_gauss_seidel(const G& g,
                                         std::span<const int> color,
                                         std::span<const double> state,
                                         const gauss_seidel_options& opt);

/// The sequential reference sweep over the same schedule.
template <micg::graph::CsrGraph G>
std::vector<double> gauss_seidel_seq(const G& g, std::span<const int> color,
                                     std::span<const double> state,
                                     int sweeps, double self_weight);

}  // namespace micg::irregular
