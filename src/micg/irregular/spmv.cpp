#include "micg/irregular/spmv.hpp"

#include "micg/support/assert.hpp"

namespace micg::irregular {

template <micg::graph::CsrGraph G>
std::vector<double> spmv(const G& g, std::span<const double> x,
                         const rt::exec& ex, spmv_matrix matrix) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  MICG_CHECK(static_cast<VId>(x.size()) == n,
             "vector size must equal vertex count");
  MICG_CHECK(ex.threads >= 1, "need at least one thread");

  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  const double* src = x.data();
  double* dst = y.data();
  rt::for_range(ex, n, [&](std::int64_t b, std::int64_t e, int) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto v = static_cast<VId>(i);
      double acc = 0.0;
      for (VId w : g.neighbors(v)) {
        acc += src[static_cast<std::size_t>(w)];
      }
      if (matrix == spmv_matrix::random_walk && g.degree(v) > 0) {
        acc /= static_cast<double>(g.degree(v));
      }
      dst[i] = acc;
    }
  });
  return y;
}

#define MICG_INSTANTIATE(G)             \
  template std::vector<double> spmv<G>( \
      const G&, std::span<const double>, const rt::exec&, spmv_matrix);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::irregular
