#include "micg/irregular/spmv.hpp"

#include <algorithm>

#include "micg/obs/obs.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/prefetch.hpp"
#include "micg/support/simd.hpp"

namespace micg::irregular {

template <micg::graph::CsrGraph G>
std::vector<double> spmv(const G& g, std::span<const double> x,
                         const spmv_options& opt) {
  using VId = typename G::vertex_type;
  using EId = typename G::edge_type;
  const VId n = g.num_vertices();
  MICG_CHECK(static_cast<VId>(x.size()) == n,
             "vector size must equal vertex count");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  MICG_CHECK(opt.mem.prefetch_distance >= 0,
             "prefetch distance must be non-negative");

  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  const double* src = x.data();
  double* dst = y.data();
  const EId* xadj = g.xadj().data();
  const VId* adj = g.adj().data();
  const auto dist = static_cast<EId>(opt.mem.prefetch_distance);
  const bool vec = opt.mem.simd;
  const bool walk = opt.matrix == spmv_matrix::random_walk;

  rt::for_range_graph(
      opt.ex, n, xadj, opt.mem.partition,
      [&](std::int64_t b, std::int64_t e, int) {
        // The prefetch cursor runs `dist` edges ahead of the row being
        // gathered; every edge of the chunk is prefetched exactly once.
        EId pf = xadj[b];
        const EId chunk_end = xadj[e];
        for (std::int64_t i = b; i < e; ++i) {
          const EId rb = xadj[i];
          const EId re = xadj[i + 1];
          const EId deg = re - rb;  // one row-extent read, reused below
          if (dist > 0) {
            const EId ahead = std::min<EId>(re + dist, chunk_end);
            for (; pf < ahead; ++pf) {
              prefetch_read(src + static_cast<std::size_t>(adj[pf]));
            }
          }
          double acc = simd::gather_sum(src, adj + rb,
                                        static_cast<std::size_t>(deg), vec);
          if (walk && deg > 0) acc /= static_cast<double>(deg);
          dst[i] = acc;
        }
      });
  if (obs::recorder* rec = opt.ex.sink(); rec != nullptr) {
    rec->set_meta("kernel", "spmv");
    rec->set_meta("partition", rt::partition_mode_name(opt.mem.partition));
    rec->set_meta("simd", opt.mem.simd && simd::vectorized() ? simd::isa_name()
                                                             : "scalar");
    rec->set_value("mem.prefetch_distance",
                   static_cast<double>(opt.mem.prefetch_distance));
  }
  return y;
}

#define MICG_INSTANTIATE(G)             \
  template std::vector<double> spmv<G>( \
      const G&, std::span<const double>, const spmv_options&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::irregular
