#include "micg/irregular/spmv.hpp"

#include "micg/support/assert.hpp"

namespace micg::irregular {

using micg::graph::csr_graph;
using micg::graph::vertex_t;

std::vector<double> spmv(const csr_graph& g, std::span<const double> x,
                         const rt::exec& ex, spmv_matrix matrix) {
  const vertex_t n = g.num_vertices();
  MICG_CHECK(static_cast<vertex_t>(x.size()) == n,
             "vector size must equal vertex count");
  MICG_CHECK(ex.threads >= 1, "need at least one thread");

  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  const double* src = x.data();
  double* dst = y.data();
  rt::for_range(ex, n, [&](std::int64_t b, std::int64_t e, int) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto v = static_cast<vertex_t>(i);
      double acc = 0.0;
      for (vertex_t w : g.neighbors(v)) {
        acc += src[static_cast<std::size_t>(w)];
      }
      if (matrix == spmv_matrix::random_walk && g.degree(v) > 0) {
        acc /= static_cast<double>(g.degree(v));
      }
      dst[i] = acc;
    }
  });
  return y;
}

}  // namespace micg::irregular
