#include "micg/irregular/pagerank.hpp"

#include <algorithm>
#include <cmath>

#include "micg/obs/obs.hpp"
#include "micg/rt/reduce.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/prefetch.hpp"
#include "micg/support/simd.hpp"

namespace micg::irregular {

template <micg::graph::CsrGraph G>
pagerank_result pagerank(const G& g, const pagerank_options& opt) {
  using VId = typename G::vertex_type;
  using EId = typename G::edge_type;
  const VId n = g.num_vertices();
  MICG_CHECK(n > 0, "pagerank needs a non-empty graph");
  MICG_CHECK(opt.damping > 0.0 && opt.damping < 1.0,
             "damping must be in (0, 1)");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  MICG_CHECK(opt.mem.prefetch_distance >= 0,
             "prefetch distance must be non-negative");

  const double init = 1.0 / static_cast<double>(n);
  pagerank_result r;
  r.rank.assign(static_cast<std::size_t>(n), init);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  // contrib[w] = rank[w] / degree(w), computed once per iteration: the
  // gather loop then sums plain doubles instead of dividing per edge
  // (|V| divisions instead of |E|).
  std::vector<double> contrib(static_cast<std::size_t>(n), 0.0);

  const EId* xadj = g.xadj().data();
  const VId* adj = g.adj().data();
  const auto dist = static_cast<EId>(opt.mem.prefetch_distance);
  const bool vec = opt.mem.simd;

  for (r.iterations = 0; r.iterations < opt.max_iterations;
       ++r.iterations) {
    // Dangling (isolated) vertices spread their rank everywhere; the same
    // sweep fills the per-vertex contribution array. The reduction uses
    // fixed blocks (rt/reduce.hpp), not per-chunk accumulators, so the
    // result — and through `base`, every rank value — is bit-identical
    // across threads, chunk sizes and partitioning: the invariance that
    // lets `--tune auto` retune the schedule without moving the answer.
    const double dangling =
        rt::deterministic_sum(opt.ex, n, [&](std::int64_t i) {
          const EId deg = xadj[i + 1] - xadj[i];
          const double rank_i = r.rank[static_cast<std::size_t>(i)];
          if (deg == 0) {
            contrib[static_cast<std::size_t>(i)] = 0.0;
            return rank_i;
          }
          contrib[static_cast<std::size_t>(i)] =
              rank_i / static_cast<double>(deg);
          return 0.0;
        });
    const double base =
        (1.0 - opt.damping) / static_cast<double>(n) +
        opt.damping * dangling / static_cast<double>(n);

    const double* src = contrib.data();
    rt::for_range_graph(
        opt.ex, n, xadj, opt.mem.partition,
        [&](std::int64_t b, std::int64_t e, int) {
          EId pf = xadj[b];
          const EId chunk_end = xadj[e];
          for (std::int64_t i = b; i < e; ++i) {
            const EId rb = xadj[i];
            const EId re = xadj[i + 1];
            if (dist > 0) {
              const EId ahead = std::min<EId>(re + dist, chunk_end);
              for (; pf < ahead; ++pf) {
                prefetch_read(src + static_cast<std::size_t>(adj[pf]));
              }
            }
            const double sum = simd::gather_sum(
                src, adj + rb, static_cast<std::size_t>(re - rb), vec);
            next[static_cast<std::size_t>(i)] = base + opt.damping * sum;
          }
        });
    // Convergence delta in its own deterministic O(|V|) sweep — streaming
    // reads of two dense arrays, negligible next to the gather pass.
    r.final_delta = rt::deterministic_sum(opt.ex, n, [&](std::int64_t i) {
      return std::abs(next[static_cast<std::size_t>(i)] -
                      r.rank[static_cast<std::size_t>(i)]);
    });
    r.rank.swap(next);
    if (r.final_delta < opt.tolerance) {
      r.converged = true;
      ++r.iterations;
      break;
    }
  }
  if (obs::recorder* rec = opt.ex.sink(); rec != nullptr) {
    rec->set_meta("kernel", "pagerank");
    rec->set_meta("converged", r.converged ? "true" : "false");
    rec->set_meta("partition", rt::partition_mode_name(opt.mem.partition));
    rec->set_meta("simd", opt.mem.simd && simd::vectorized() ? simd::isa_name()
                                                             : "scalar");
    rec->set_value("mem.prefetch_distance",
                   static_cast<double>(opt.mem.prefetch_distance));
    rec->get_counter("pagerank.iterations")
        .add(0, static_cast<std::uint64_t>(r.iterations));
    rec->set_value("pagerank.final_delta", r.final_delta);
  }
  return r;
}

#define MICG_INSTANTIATE(G) \
  template pagerank_result pagerank<G>(const G&, const pagerank_options&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::irregular
