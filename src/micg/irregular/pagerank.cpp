#include "micg/irregular/pagerank.hpp"

#include <cmath>

#include "micg/obs/obs.hpp"
#include "micg/rt/tls.hpp"
#include "micg/support/assert.hpp"

namespace micg::irregular {

template <micg::graph::CsrGraph G>
pagerank_result pagerank(const G& g, const pagerank_options& opt) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  MICG_CHECK(n > 0, "pagerank needs a non-empty graph");
  MICG_CHECK(opt.damping > 0.0 && opt.damping < 1.0,
             "damping must be in (0, 1)");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");

  const double init = 1.0 / static_cast<double>(n);
  pagerank_result r;
  r.rank.assign(static_cast<std::size_t>(n), init);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);

  // Per-thread accumulators for dangling mass and the convergence delta.
  rt::combinable<double> dangling_acc(opt.ex.threads);
  rt::combinable<double> delta_acc(opt.ex.threads);

  for (r.iterations = 0; r.iterations < opt.max_iterations;
       ++r.iterations) {
    // Dangling (isolated) vertices spread their rank everywhere.
    dangling_acc.clear();
    rt::for_range(opt.ex, n, [&](std::int64_t b, std::int64_t e, int) {
      double local = 0.0;
      for (std::int64_t i = b; i < e; ++i) {
        if (g.degree(static_cast<VId>(i)) == 0) {
          local += r.rank[static_cast<std::size_t>(i)];
        }
      }
      dangling_acc.local() += local;
    });
    const double dangling = dangling_acc.combine(
        0.0, [](double a, double b) { return a + b; });
    const double base =
        (1.0 - opt.damping) / static_cast<double>(n) +
        opt.damping * dangling / static_cast<double>(n);

    delta_acc.clear();
    rt::for_range(opt.ex, n, [&](std::int64_t b, std::int64_t e, int) {
      double local_delta = 0.0;
      for (std::int64_t i = b; i < e; ++i) {
        const auto v = static_cast<VId>(i);
        double sum = 0.0;
        for (VId w : g.neighbors(v)) {
          sum += r.rank[static_cast<std::size_t>(w)] /
                 static_cast<double>(g.degree(w));
        }
        const double nv = base + opt.damping * sum;
        local_delta += std::abs(nv - r.rank[static_cast<std::size_t>(v)]);
        next[static_cast<std::size_t>(v)] = nv;
      }
      delta_acc.local() += local_delta;
    });
    r.final_delta =
        delta_acc.combine(0.0, [](double a, double b) { return a + b; });
    r.rank.swap(next);
    if (r.final_delta < opt.tolerance) {
      r.converged = true;
      ++r.iterations;
      break;
    }
  }
  if (obs::recorder* rec = opt.ex.sink(); rec != nullptr) {
    rec->set_meta("kernel", "pagerank");
    rec->set_meta("converged", r.converged ? "true" : "false");
    rec->get_counter("pagerank.iterations")
        .add(0, static_cast<std::uint64_t>(r.iterations));
    rec->set_value("pagerank.final_delta", r.final_delta);
  }
  return r;
}

#define MICG_INSTANTIATE(G) \
  template pagerank_result pagerank<G>(const G&, const pagerank_options&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::irregular
