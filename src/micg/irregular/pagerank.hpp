// PageRank — one of the real applications the paper's microbenchmark
// abstracts ("a reasonable abstraction of a single iteration of algorithms
// such as Page Rank", §III-B). Power iteration on the undirected graph,
// double-buffered, parallel over vertices on any rt::exec backend.
#pragma once

#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/rt/edge_partition.hpp"
#include "micg/rt/exec.hpp"

namespace micg::irregular {

struct pagerank_options {
  rt::exec ex;
  double damping = 0.85;
  double tolerance = 1e-8;  ///< L1 change per iteration that counts as converged
  int max_iterations = 200;
  /// Memory-hierarchy fast-path knobs; every combination yields
  /// bit-identical ranks (tested). rt::scalar_mem_opts() is the
  /// pre-optimization path.
  rt::mem_opts mem;
};

struct pagerank_result {
  std::vector<double> rank;  ///< sums to 1 (dangling mass redistributed)
  int iterations = 0;
  double final_delta = 0.0;  ///< L1 change of the last iteration
  bool converged = false;
};

/// Power-iteration PageRank. Defined for every shipped layout.
template <micg::graph::CsrGraph G>
pagerank_result pagerank(const G& g, const pagerank_options& opt);

}  // namespace micg::irregular
