// Host calibration — the per-machine half of the auto-tuner.
//
// The paper's central lesson is that the *same* kernels want different
// memory-hierarchy configurations on different machines: software
// prefetching pays on the in-order KNF and costs 10-25% on out-of-order
// hosts, SMT hides gather latency on one chip and merely adds contention
// on the other (§V, §VI). The repo's knobs (rt::mem_opts, chunk sizes,
// frontier representation) were tuned by hand per machine via the
// bench/ablate_* sweeps; this header replaces that manual step with a
// one-time measurement.
//
// `calibrate()` microbenchmarks the handful of machine parameters the
// knob decisions actually depend on:
//
//   * alu_ns            — latency of one dependent ALU op (the model's
//                         abstract "time unit", measured);
//   * stream_gbps       — sequential triad bandwidth (roofline ceiling);
//   * gather points     — effective random-gather bandwidth at several
//                         working-set sizes, in each fast-path flavor the
//                         kernels can run (scalar / SIMD / prefetch 8 /
//                         prefetch 32) — the gather_sum() inner loop of
//                         the irregular kernels, measured directly;
//   * gather_latency_ns — dependent-chain (pointer-chase) miss latency;
//   * chunk_claim_ns /
//     spawn_ns          — per-chunk dynamic-scheduling and per-task
//                         overheads of the rt backends.
//
// The result round-trips through the `micg.calib.v1` JSON schema so one
// `micg calibrate` run can be committed / shipped / injected into CI (a
// committed synthetic profile keeps CI free of timing dependence), and
// projects onto model::machine_config so the what-if simulator can answer
// questions about the calibrated host, not just the paper's presets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "micg/api/json.hpp"
#include "micg/model/machine.hpp"

namespace micg::tune {

/// Wire/schema identifier of the persisted profile.
inline constexpr const char* calib_schema = "micg.calib.v1";

/// Random-gather throughput at one working-set size, per fast-path
/// flavor. Bandwidths are *payload* GB/s (8 bytes per gathered double,
/// line fills not counted) — only ratios between flavors matter to the
/// picker, absolute calibration against hardware counters is not needed.
struct gather_point {
  std::int64_t working_set_bytes = 0;
  double plain_gbps = 0.0;       ///< scalar striped-8, no prefetch
  double simd_gbps = 0.0;        ///< vector gather path (== plain when
                                 ///< the build has no SIMD)
  double prefetch8_gbps = 0.0;   ///< scalar, software prefetch 8 ahead
  double prefetch32_gbps = 0.0;  ///< scalar, software prefetch 32 ahead
};

struct calibration_profile {
  std::string host;  ///< free-form machine label ("" is fine)
  std::string isa;   ///< simd::isa_name() at calibration time
  int threads = 1;   ///< threads the bandwidth benches ran with
  /// True for hand-written profiles (tests, CI fixtures, the builtin
  /// default); false only for profiles measured by calibrate().
  bool synthetic = true;

  double alu_ns = 0.0;             ///< one dependent shift-add iteration
  double stream_gbps = 0.0;        ///< sequential triad bandwidth
  double gather_latency_ns = 0.0;  ///< pointer-chase ns per hop
  double chunk_claim_ns = 0.0;     ///< dynamic-schedule per-chunk claim
  double spawn_ns = 0.0;           ///< per-task create/retire overhead
  /// Gather throughput by working set, ascending working_set_bytes.
  std::vector<gather_point> gather;

  /// The measured point whose working set is nearest (log-scale) to
  /// `bytes`; never nullptr on a valid profile (gather is non-empty).
  [[nodiscard]] const gather_point* gather_near(std::int64_t bytes) const;
};

struct calibrate_options {
  int threads = 1;
  /// Timing repetitions per microbenchmark (minimum is kept).
  int repeats = 3;
  /// Shrink working sets and iteration counts ~8x. For smoke tests and
  /// the bench harness; ratios stay usable, absolute numbers get noisy.
  bool quick = false;
  /// Working-set sizes for the gather sweep; empty selects the default
  /// ladder (256 KiB / 4 MiB / 64 MiB, capped at 4 MiB under `quick`).
  std::vector<std::int64_t> working_sets;
};

/// Run the microbenchmarks. Wall-clock ~seconds (full) / well under a
/// second (quick). The result has synthetic == false.
calibration_profile calibrate(const calibrate_options& opt = {});

/// The built-in fallback profile: a synthetic out-of-order host shaped so
/// the knob picker reproduces the repo's shipped static defaults (SIMD
/// on, prefetch off — docs/performance.md). Used whenever no measured
/// profile is available.
calibration_profile default_profile();

/// The process-wide profile `--tune auto` consults: the file named by
/// $MICG_CALIB (parsed once, errors propagate as check_error), else
/// default_profile(). Cached after the first call.
const calibration_profile& host_profile();

// --- micg.calib.v1 (de)serialization --------------------------------------

api::json to_json(const calibration_profile& p);
/// Inverse of to_json. Validates the schema tag, that every rate is
/// finite and positive, and that gather is non-empty and sorted by
/// working set; throws micg::check_error otherwise.
calibration_profile profile_from_json(const api::json& v);

/// Read + parse a profile file; throws check_error on I/O or schema
/// errors.
calibration_profile load_profile(const std::string& path);
/// Serialize `p` to `path` (compact JSON + trailing newline).
void save_profile(const std::string& path, const calibration_profile& p);

// --- model projection ------------------------------------------------------

/// Project the measured quantities onto the performance model's abstract
/// units (1.0 == one ALU op == alu_ns wall nanoseconds): mem_latency,
/// chip bandwidth, scheduling overheads. Topology is taken from the
/// calibration run (cores = threads, smt = 1 — the benches do not probe
/// SMT); unmeasured parameters keep machine_config defaults.
model::machine_config to_machine_config(const calibration_profile& p);

}  // namespace micg::tune
