#include "micg/tune/tune.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "micg/support/assert.hpp"

namespace micg::tune {

namespace {

// Decision thresholds. Centralized so the unit-test decision table and
// the rationale strings reference one set of constants.

/// A non-default gather flavor must beat the shipped default (SIMD on,
/// prefetch off) by this factor before the picker deviates — hysteresis
/// against calibration noise flapping the knobs run to run.
constexpr double kFlavorHysteresis = 1.03;
/// Degree skew (max/avg) past which vertex-count chunks serialize on hub
/// rows and edge balancing pays.
constexpr double kEdgeBalanceSkew = 4.0;
/// Hub mass (top-64 edge fraction) that forces edge balancing even at
/// modest skew.
constexpr double kEdgeBalanceHubMass = 0.10;
/// Branching factor past which frontiers plausibly go wide enough for
/// the bitmap/direction-optimizing representation to win.
constexpr double kDirectionMinAvgDegree = 8.0;
/// ...and the skew that makes the middle levels collapse (RMAT-like).
constexpr double kDirectionMinSkew = 8.0;
/// Hub mass past which the bottom-up switch should fire earlier
/// (alpha 8 instead of Beamer's 14) — a hub joins the frontier almost
/// immediately and drags most edges with it.
constexpr double kEarlySwitchHubMass = 0.40;
/// Scheduling overhead target: one chunk claim per >= 100x its cost of
/// useful work (<= 1% overhead).
constexpr double kClaimAmortization = 100.0;

/// Predicted gather throughput of (simd, prefetch) at one measured
/// point. Prefetch was measured on the scalar path only; the two effects
/// are assumed independent (multiplicative), which is what the committed
/// ablations show on both flavors.
double flavor_gbps(const gather_point& pt, bool simd, int prefetch) {
  const double base = simd ? pt.simd_gbps : pt.plain_gbps;
  const double pf = prefetch == 32  ? pt.prefetch32_gbps
                    : prefetch == 8 ? pt.prefetch8_gbps
                                    : pt.plain_gbps;
  return base * (pf / pt.plain_gbps);
}

}  // namespace

const char* tune_mode_name(tune_mode m) {
  switch (m) {
    case tune_mode::fixed: return "fixed";
    case tune_mode::auto_pick: return "auto";
    case tune_mode::calibrate: return "calibrate";
  }
  return "fixed";
}

tune_mode tune_mode_from_name(const std::string& name) {
  for (tune_mode m :
       {tune_mode::fixed, tune_mode::auto_pick, tune_mode::calibrate}) {
    if (name == tune_mode_name(m)) return m;
  }
  MICG_CHECK(false, "unknown tune mode: " + name +
                        " (expected fixed, auto or calibrate)");
  return tune_mode::fixed;  // unreachable
}

tune_mode resolve_tune_mode(const std::string& request_field) {
  if (!request_field.empty()) return tune_mode_from_name(request_field);
  const char* env = std::getenv("MICG_TUNE");
  if (env != nullptr && *env != '\0') return tune_mode_from_name(env);
  return tune_mode::fixed;
}

knob_plan pick_knobs(const calibration_profile& prof,
                     const graph::graph_stats& st) {
  knob_plan plan;
  std::ostringstream why;

  // The gathered object is the x/rank/level vector: 8 bytes per vertex.
  const std::int64_t payload =
      std::max<std::int64_t>(st.num_vertices * 8, 512);
  const gather_point* pt = prof.gather_near(payload);
  MICG_CHECK(pt != nullptr, "calibration profile has no gather points");

  // --- gather flavor: argmax over the grid the kernels can execute, with
  // hysteresis in favor of the shipped default (simd on, prefetch off).
  const double dflt = flavor_gbps(*pt, true, 0);
  bool best_simd = true;
  int best_pf = 0;
  double best = dflt;
  for (const bool simd : {false, true}) {
    for (const int pf : {0, 8, 32}) {
      if (simd && pf == 0) continue;  // the default itself
      const double est = flavor_gbps(*pt, simd, pf);
      if (est > dflt * kFlavorHysteresis && est > best) {
        best_simd = simd;
        best_pf = pf;
        best = est;
      }
    }
  }
  why << "ws=" << pt->working_set_bytes << "B "
      << (best_simd ? "simd" : "scalar") << " pf" << best_pf << " ("
      << best / dflt << "x default)";

  // --- loop partitioning: edge balancing once hub rows can dominate a
  // vertex-count chunk.
  const bool edge_balance = st.skew() >= kEdgeBalanceSkew ||
                            st.hub_edge_fraction >= kEdgeBalanceHubMass;
  plan.mem = rt::mem_opts{
      .partition = edge_balance ? rt::partition_mode::edge
                                : rt::partition_mode::vertex,
      .prefetch_distance = best_pf,
      .simd = best_simd,
  };
  why << "; skew=" << st.skew() << " hubs=" << st.hub_edge_fraction << " -> "
      << rt::partition_mode_name(plan.mem.partition);

  // --- BFS frontier: the direction-optimizing bitmap path wins when the
  // expansion is wide (high branching factor) and the middle levels
  // collapse (high skew) — RMAT-shaped inputs. Narrow/mesh frontiers
  // keep the queue variants. Either choice yields identical levels.
  plan.bfs_direction = st.avg_degree >= kDirectionMinAvgDegree &&
                       st.skew() >= kDirectionMinSkew;
  plan.bfs_bitmap = true;
  plan.bfs_partition = plan.mem.partition;
  plan.bfs_alpha =
      st.hub_edge_fraction >= kEarlySwitchHubMass ? 8.0 : 14.0;
  plan.bfs_beta = 24.0;
  why << "; avg_deg=" << st.avg_degree << " -> "
      << (plan.bfs_direction ? "direction" : "queue");

  // --- layout: the narrowest-fit rule, restated from the stats so the
  // serving layer can flag snapshots stored wider than needed.
  plan.layout = graph::select_layout(st.num_vertices, st.num_directed_edges);

  // --- chunk: amortize one dynamic-schedule claim over >= 100x its cost
  // of per-chunk gather work, never below the shipped default of 64.
  const double edge_ns = 8.0 / best;  // ns per gathered edge at `best` GB/s
  const double vertex_ns = std::max(st.avg_degree, 1.0) * edge_ns;
  const double raw = kClaimAmortization * prof.chunk_claim_ns / vertex_ns;
  plan.chunk = static_cast<std::int64_t>(std::bit_ceil(
      static_cast<std::uint64_t>(std::clamp(raw, 64.0, 8192.0))));
  why << "; chunk=" << plan.chunk;

  plan.rationale = why.str();
  return plan;
}

std::string knobs_summary(const knob_plan& plan) {
  std::ostringstream out;
  out << rt::partition_mode_name(plan.mem.partition) << "/pf"
      << plan.mem.prefetch_distance << "/"
      << (plan.mem.simd ? "simd" : "scalar") << "/chunk"
      << plan.chunk << (plan.bfs_direction ? "/dir" : "/queue");
  return out.str();
}

std::int64_t pick_sssp_delta(const graph::graph_stats& st,
                             std::int64_t max_weight) {
  MICG_CHECK(max_weight >= 1, "max_weight must be >= 1");
  const auto branching =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(st.avg_degree));
  return std::max<std::int64_t>(1, max_weight / branching);
}

void tag_plan(obs::recorder* rec, tune_mode mode, const knob_plan& plan) {
  if (rec == nullptr) return;
  rec->set_meta("tune.mode", tune_mode_name(mode));
  rec->set_meta("tune.knobs", knobs_summary(plan));
  rec->set_meta("tune.why", plan.rationale);
}

void tag_sharded_pin(obs::recorder* rec) {
  if (rec == nullptr) return;
  // set_meta is last-write-wins: this overwrites the tags tag_plan
  // emitted before the api layer discovered the request is sharded.
  rec->set_meta("tune.mode", tune_mode_name(tune_mode::fixed));
  rec->set_meta("tune.knobs", "(sharded-pinned)");
  rec->set_meta("tune.why",
                "sharded path pins fixed knobs; picker plan not applied");
}

const calibration_profile& profile_for_mode(tune_mode m) {
  if (m == tune_mode::calibrate) {
    // One quick in-process measurement, shared by every later pick.
    static std::once_flag once;
    static calibration_profile measured;
    std::call_once(once, [] {
      calibrate_options opt;
      opt.quick = true;
      opt.repeats = 2;
      measured = calibrate(opt);
    });
    return measured;
  }
  return host_profile();
}

}  // namespace micg::tune
