#include "micg/tune/calib.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "micg/rt/exec.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/prefetch.hpp"
#include "micg/support/rng.hpp"
#include "micg/support/simd.hpp"
#include "micg/support/timer.hpp"

namespace micg::tune {

namespace {

/// Compiler sink: forces every benchmark's accumulator to be observed so
/// the measured loop cannot be dead-code-eliminated.
volatile double g_sink_d = 0.0;
volatile std::uint64_t g_sink_u = 0;

/// Minimum of `repeats` timed runs of `body()` (seconds). Min — not mean —
/// because scheduling noise only ever adds time (the ablate_memlat
/// convention).
template <class Body>
double min_seconds(int repeats, const Body& body) {
  double best = 1e300;
  for (int r = 0; r < std::max(repeats, 1); ++r) {
    stopwatch sw;
    body();
    best = std::min(best, sw.seconds());
  }
  return best;
}

/// Dependent shift-add chain: the model's abstract "one ALU op". The
/// carried dependence (acc feeds the next iteration through a shift)
/// stops the compiler from reassociating the loop into a closed form.
double bench_alu_ns(std::int64_t iters, int repeats) {
  const double secs = min_seconds(repeats, [&] {
    std::uint64_t acc = 0x9e3779b97f4a7c15ULL;
    for (std::int64_t i = 0; i < iters; ++i) {
      acc = (acc >> 1) + static_cast<std::uint64_t>(i);
    }
    g_sink_u = acc;
  });
  return secs * 1e9 / static_cast<double>(iters);
}

/// Sequential triad a[i] = b[i] + s*c[i]; 24 bytes of traffic per
/// element. Split across `threads` with the static schedule (pure
/// streaming, no claim overhead to speak of).
double bench_stream_gbps(std::int64_t elems, int threads, int repeats) {
  std::vector<double> a(static_cast<std::size_t>(elems), 0.0);
  std::vector<double> b(static_cast<std::size_t>(elems), 1.0);
  std::vector<double> c(static_cast<std::size_t>(elems), 2.0);
  rt::exec e;
  e.kind = rt::backend::omp_static;
  e.threads = threads;
  e.chunk = std::max<std::int64_t>(elems / (threads * 8), 1);
  const double secs = min_seconds(repeats, [&] {
    rt::for_range(e, elems, [&](std::int64_t lo, std::int64_t hi, int) {
      for (std::int64_t i = lo; i < hi; ++i) {
        a[static_cast<std::size_t>(i)] =
            b[static_cast<std::size_t>(i)] +
            1.5 * c[static_cast<std::size_t>(i)];
      }
    });
  });
  g_sink_d = a[0];
  return static_cast<double>(elems) * 24.0 / secs / 1e9;
}

/// Scalar gather with a software-prefetch cursor `dist` indices ahead —
/// the exact shape of the irregular kernels' prefetch fast path.
double gather_prefetch(const double* x, const std::int32_t* idx,
                       std::size_t n, std::size_t dist) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i + dist < n) {
      prefetch_read(&x[static_cast<std::size_t>(idx[i + dist])]);
    }
    acc += x[static_cast<std::size_t>(idx[i])];
  }
  return acc;
}

/// One gather_point: throughput of each fast-path flavor over the same
/// random index stream into a `ws_bytes` table. Single-threaded — the
/// picker consumes flavor *ratios*, which are per-core properties.
gather_point bench_gather(std::int64_t ws_bytes, std::int64_t num_idx,
                          int repeats) {
  const auto table = std::max<std::int64_t>(ws_bytes / 8, 64);
  std::vector<double> x(static_cast<std::size_t>(table), 1.0);
  std::vector<std::int32_t> idx(static_cast<std::size_t>(num_idx));
  xoshiro256ss rng(0x5EEDBEEF);
  for (auto& v : idx) {
    v = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(table)));
  }
  const auto n = idx.size();
  const double payload = static_cast<double>(num_idx) * 8.0 / 1e9;

  gather_point pt;
  pt.working_set_bytes = table * 8;
  pt.plain_gbps = payload / min_seconds(repeats, [&] {
    g_sink_d = simd::gather_sum(x.data(), idx.data(), n, /*vectorize=*/false);
  });
  pt.simd_gbps = payload / min_seconds(repeats, [&] {
    g_sink_d = simd::gather_sum(x.data(), idx.data(), n, /*vectorize=*/true);
  });
  pt.prefetch8_gbps = payload / min_seconds(repeats, [&] {
    g_sink_d = gather_prefetch(x.data(), idx.data(), n, 8);
  });
  pt.prefetch32_gbps = payload / min_seconds(repeats, [&] {
    g_sink_d = gather_prefetch(x.data(), idx.data(), n, 32);
  });
  return pt;
}

/// Pointer chase around a Sattolo cycle: every load depends on the
/// previous one, so the time per hop is the full miss latency with zero
/// overlap.
double bench_gather_latency_ns(std::int64_t ws_bytes, std::int64_t hops,
                               int repeats) {
  const auto slots = std::max<std::int64_t>(ws_bytes / 8, 64);
  std::vector<std::int64_t> next(static_cast<std::size_t>(slots));
  std::vector<std::int64_t> order(static_cast<std::size_t>(slots));
  for (std::int64_t i = 0; i < slots; ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  xoshiro256ss rng(0xC0FFEE);
  // Sattolo's algorithm: a single cycle visiting every slot.
  for (std::int64_t i = slots - 1; i > 0; --i) {
    const auto j =
        static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(i)));
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(j)]);
  }
  for (std::int64_t i = 0; i < slots; ++i) {
    next[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
        order[static_cast<std::size_t>((i + 1) % slots)];
  }
  const double secs = min_seconds(repeats, [&] {
    std::int64_t p = 0;
    for (std::int64_t i = 0; i < hops; ++i) {
      p = next[static_cast<std::size_t>(p)];
    }
    g_sink_u = static_cast<std::uint64_t>(p);
  });
  return secs * 1e9 / static_cast<double>(hops);
}

/// Per-event scheduling overhead of `kind`: time a trivial n-item loop at
/// one item per dispatch unit, subtract the same loop as a single chunk,
/// divide by the number of events.
double bench_sched_ns(rt::backend kind, int threads, std::int64_t n,
                      int repeats) {
  std::vector<std::int64_t> sink(256, 0);
  rt::exec fine;
  fine.kind = kind;
  fine.threads = threads;
  fine.chunk = 1;
  rt::exec coarse = fine;
  coarse.chunk = n;
  const auto body = [&](std::int64_t lo, std::int64_t hi, int worker) {
    sink[static_cast<std::size_t>(worker % 256)] += hi - lo;
  };
  const double t_fine =
      min_seconds(repeats, [&] { rt::for_range(fine, n, body); });
  const double t_coarse =
      min_seconds(repeats, [&] { rt::for_range(coarse, n, body); });
  g_sink_u = static_cast<std::uint64_t>(sink[0]);
  return std::max(0.0, (t_fine - t_coarse) * 1e9 / static_cast<double>(n));
}

}  // namespace

const gather_point* calibration_profile::gather_near(
    std::int64_t bytes) const {
  const gather_point* best = nullptr;
  double best_d = 1e300;
  const double lb = std::log(static_cast<double>(std::max<std::int64_t>(
      bytes, 1)));
  for (const auto& pt : gather) {
    const double d = std::abs(
        std::log(static_cast<double>(std::max<std::int64_t>(
            pt.working_set_bytes, 1))) -
        lb);
    if (best == nullptr || d < best_d) {
      best = &pt;
      best_d = d;
    }
  }
  return best;
}

calibration_profile calibrate(const calibrate_options& opt) {
  MICG_CHECK(opt.threads >= 1 && opt.threads <= 4096,
             "calibrate threads must be in [1, 4096]");
  MICG_CHECK(opt.repeats >= 1, "calibrate repeats must be >= 1");
  const std::int64_t scale = opt.quick ? 8 : 1;

  calibration_profile p;
  p.host = "measured";
  p.isa = simd::isa_name();
  p.threads = opt.threads;
  p.synthetic = false;

  p.alu_ns = bench_alu_ns((1 << 24) / scale, opt.repeats);
  p.stream_gbps =
      bench_stream_gbps((std::int64_t{1} << 22) / scale, opt.threads,
                        opt.repeats);

  std::vector<std::int64_t> sets = opt.working_sets;
  if (sets.empty()) {
    sets = {std::int64_t{1} << 18, std::int64_t{1} << 22,
            std::int64_t{1} << 26};
    if (opt.quick) sets.pop_back();  // skip the 64 MiB table when quick
  }
  std::sort(sets.begin(), sets.end());
  for (const auto ws : sets) {
    MICG_CHECK(ws >= 512, "gather working set must be >= 512 bytes");
    p.gather.push_back(bench_gather(ws, (1 << 21) / scale, opt.repeats));
  }
  p.gather_latency_ns =
      bench_gather_latency_ns(sets.back(), (1 << 20) / scale, opt.repeats);

  const std::int64_t sched_n = (1 << 16) / scale;
  p.chunk_claim_ns =
      bench_sched_ns(rt::backend::omp_dynamic, opt.threads, sched_n,
                     opt.repeats);
  p.spawn_ns = bench_sched_ns(rt::backend::tbb_simple, opt.threads, sched_n,
                              opt.repeats);
  return p;
}

calibration_profile default_profile() {
  // A generic out-of-order host: hardware prefetchers already hide most
  // of the gather latency, so software prefetch *loses* a little (the
  // docs/performance.md measurement) while the AVX2 gather path wins
  // ~25%. The knob picker over this profile reproduces the shipped
  // static defaults, which keeps `--tune auto` a no-op on machines that
  // never ran `micg calibrate`.
  calibration_profile p;
  p.host = "builtin-ooo-host";
  p.isa = simd::isa_name();
  p.threads = 1;
  p.synthetic = true;
  p.alu_ns = 0.4;
  p.stream_gbps = 12.0;
  p.gather_latency_ns = 80.0;
  p.chunk_claim_ns = 40.0;
  p.spawn_ns = 120.0;
  p.gather = {
      {.working_set_bytes = std::int64_t{1} << 18,
       .plain_gbps = 6.0,
       .simd_gbps = 7.5,
       .prefetch8_gbps = 5.8,
       .prefetch32_gbps = 5.6},
      {.working_set_bytes = std::int64_t{1} << 26,
       .plain_gbps = 1.2,
       .simd_gbps = 1.5,
       .prefetch8_gbps = 1.15,
       .prefetch32_gbps = 1.1},
  };
  return p;
}

const calibration_profile& host_profile() {
  static std::once_flag once;
  static calibration_profile prof;
  std::call_once(once, [] {
    const char* path = std::getenv("MICG_CALIB");
    prof = (path != nullptr && *path != '\0') ? load_profile(path)
                                              : default_profile();
  });
  return prof;
}

// ---------------------------------------------------------------------------
// micg.calib.v1

api::json to_json(const calibration_profile& p) {
  api::json_array pts;
  pts.reserve(p.gather.size());
  for (const auto& g : p.gather) {
    pts.emplace_back(api::json_object{
        {"working_set_bytes", api::json(g.working_set_bytes)},
        {"plain_gbps", api::json(g.plain_gbps)},
        {"simd_gbps", api::json(g.simd_gbps)},
        {"prefetch8_gbps", api::json(g.prefetch8_gbps)},
        {"prefetch32_gbps", api::json(g.prefetch32_gbps)}});
  }
  return api::json(api::json_object{
      {"schema", api::json(calib_schema)},
      {"host", api::json(p.host)},
      {"isa", api::json(p.isa)},
      {"threads", api::json(p.threads)},
      {"synthetic", api::json(p.synthetic)},
      {"alu_ns", api::json(p.alu_ns)},
      {"stream_gbps", api::json(p.stream_gbps)},
      {"gather_latency_ns", api::json(p.gather_latency_ns)},
      {"chunk_claim_ns", api::json(p.chunk_claim_ns)},
      {"spawn_ns", api::json(p.spawn_ns)},
      {"gather", api::json(std::move(pts))}});
}

namespace {

double positive_rate(const api::json& v, std::string_view key) {
  const double x = v.at(key).as_double();
  MICG_CHECK(std::isfinite(x) && x > 0.0,
             std::string("calibration field must be a positive finite "
                         "number: ") +
                 std::string(key));
  return x;
}

}  // namespace

calibration_profile profile_from_json(const api::json& v) {
  MICG_CHECK(v.is_object(), "calibration profile must be a JSON object");
  MICG_CHECK(v.at("schema").as_string() == calib_schema,
             std::string("calibration profile schema must be ") +
                 calib_schema);
  calibration_profile p;
  p.host = v.at("host").as_string();
  p.isa = v.at("isa").as_string();
  p.threads = static_cast<int>(v.at("threads").as_int());
  MICG_CHECK(p.threads >= 1, "calibration threads must be >= 1");
  p.synthetic = v.at("synthetic").as_bool();
  p.alu_ns = positive_rate(v, "alu_ns");
  p.stream_gbps = positive_rate(v, "stream_gbps");
  p.gather_latency_ns = positive_rate(v, "gather_latency_ns");
  // Scheduling overheads may legitimately measure ~0 (the subtraction
  // clamps at zero); require finite and non-negative only.
  p.chunk_claim_ns = v.at("chunk_claim_ns").as_double();
  p.spawn_ns = v.at("spawn_ns").as_double();
  MICG_CHECK(std::isfinite(p.chunk_claim_ns) && p.chunk_claim_ns >= 0.0,
             "chunk_claim_ns must be finite and >= 0");
  MICG_CHECK(std::isfinite(p.spawn_ns) && p.spawn_ns >= 0.0,
             "spawn_ns must be finite and >= 0");
  const auto& pts = v.at("gather").as_array();
  MICG_CHECK(!pts.empty(), "calibration profile needs >= 1 gather point");
  std::int64_t prev_ws = 0;
  for (const auto& e : pts) {
    gather_point g;
    g.working_set_bytes = e.at("working_set_bytes").as_int();
    MICG_CHECK(g.working_set_bytes > prev_ws,
               "gather points must be sorted by working_set_bytes, "
               "strictly increasing");
    prev_ws = g.working_set_bytes;
    g.plain_gbps = positive_rate(e, "plain_gbps");
    g.simd_gbps = positive_rate(e, "simd_gbps");
    g.prefetch8_gbps = positive_rate(e, "prefetch8_gbps");
    g.prefetch32_gbps = positive_rate(e, "prefetch32_gbps");
    p.gather.push_back(g);
  }
  return p;
}

calibration_profile load_profile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MICG_CHECK(in.good(), "cannot open calibration profile: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return profile_from_json(api::json::parse(ss.str()));
}

void save_profile(const std::string& path, const calibration_profile& p) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MICG_CHECK(out.good(), "cannot write calibration profile: " + path);
  out << to_json(p).dump() << "\n";
  MICG_CHECK(out.good(), "short write to calibration profile: " + path);
}

// ---------------------------------------------------------------------------
// model projection

model::machine_config to_machine_config(const calibration_profile& p) {
  MICG_CHECK(p.alu_ns > 0.0, "profile alu_ns must be positive");
  const gather_point* far =
      p.gather_near(std::numeric_limits<std::int64_t>::max());
  MICG_CHECK(far != nullptr, "profile needs >= 1 gather point");

  model::machine_config m;
  m.name = "calibrated:" + p.host;
  m.cores = p.threads;  // topology = what the benches actually exercised
  m.smt = 1;
  m.cpu_per_op = 1.0;
  m.mem_latency = p.gather_latency_ns / p.alu_ns;
  // Little's law on the largest working set: misses in flight = line
  // bandwidth x latency. The gather bench counts 8-byte payloads but
  // each miss drags a 64-byte line.
  const double lines_per_ns = far->plain_gbps / 64.0;
  m.mlp = std::clamp(
      static_cast<int>(std::lround(lines_per_ns * p.gather_latency_ns)), 1,
      16);
  // Stream bandwidth in 8-byte memory ops per abstract time unit.
  m.chip_mem_ops_per_unit = p.stream_gbps / 8.0 * p.alu_ns;
  m.chunk_claim = p.chunk_claim_ns / p.alu_ns;
  m.task_spawn = p.spawn_ns / p.alu_ns;
  return m;
}

}  // namespace micg::tune
