// The knob picker — calibration x graph stats -> concrete configuration.
//
// pick_knobs() joins the two halves of the auto-tuner: a machine profile
// (tune/calib.hpp — what does a gather cost here, in each fast-path
// flavor?) and a graph probe (graph/stats.hpp — how skewed is the degree
// distribution, how wide do frontiers get?). It runs a small roofline
// cost model over the configurations the kernels can actually execute
// and emits a knob_plan: the rt::mem_opts for the irregular kernels, the
// frontier representation and direction-switch thresholds for BFS, the
// loop partitioning, the storage layout, and a chunk size.
//
// Every knob it sets is *output-invariant by construction*: SIMD /
// prefetch / partitioning are bit-identical fast paths (tested since
// their PRs), every BFS variant produces the same levels, and chunk only
// moves scheduling boundaries. `--tune auto` can therefore never change
// an answer, only its speed — the property tests in tests/tune_test.cpp
// pin this across layouts and kernels.
//
// Modes (CLI --tune, wire field "tune", env MICG_TUNE):
//   fixed     — knobs come from the request / compiled defaults (the
//               historical behavior; the default).
//   auto      — pick from host_profile() ($MICG_CALIB or the builtin
//               default) + the graph's cached stats.
//   calibrate — measure a quick profile first (once per process), then
//               pick. For hosts that never ran `micg calibrate`.
#pragma once

#include <cstdint>
#include <string>

#include "micg/graph/any_csr.hpp"
#include "micg/graph/stats.hpp"
#include "micg/obs/obs.hpp"
#include "micg/rt/edge_partition.hpp"
#include "micg/tune/calib.hpp"

namespace micg::tune {

enum class tune_mode {
  fixed,
  auto_pick,
  calibrate,
};

/// Wire/flag name: "fixed", "auto", "calibrate".
const char* tune_mode_name(tune_mode m);
/// Inverse of tune_mode_name; throws micg::check_error on unknown names.
tune_mode tune_mode_from_name(const std::string& name);

/// Resolve a request's tune field: a non-empty field wins; an empty one
/// defers to $MICG_TUNE (so CI can force a mode process-wide); unset
/// everywhere means fixed.
tune_mode resolve_tune_mode(const std::string& request_field);

/// The configuration the picker chose. Fields the caller should leave
/// alone are encoded as "keep" values (chunk == 0).
struct knob_plan {
  /// Memory fast-path knobs for the irregular kernels and bottom-up BFS.
  rt::mem_opts mem{};
  /// Scheduling grain for dynamic backends; 0 = keep the request's chunk.
  std::int64_t chunk = 0;

  // --- BFS frontier shape -------------------------------------------------
  /// Run direction-optimizing (bitmap) BFS instead of the queue variant.
  bool bfs_direction = false;
  bool bfs_bitmap = true;
  rt::partition_mode bfs_partition = rt::partition_mode::edge;
  double bfs_alpha = 14.0;
  double bfs_beta = 24.0;

  /// Narrowest storage layout that fits the graph (select_layout rule).
  /// Advisory: run() cannot re-lay-out a loaded graph, but the serve
  /// compaction path and the obs tags report mismatches.
  graph::csr_layout layout = graph::csr_layout::v32e32;

  /// One-line human-readable account of the decisions ("skew=41.2 ->
  /// edge; simd x1.25 -> on; ..."), for obs tags and `micg calibrate -v`.
  std::string rationale;
};

/// Run the cost model. Pure function of its inputs — the decision-table
/// unit tests feed synthetic profiles/stats and assert exact knobs.
knob_plan pick_knobs(const calibration_profile& prof,
                     const graph::graph_stats& st);

/// Compact knob summary for metrics tags ("edge/pf0/simd/chunk128/dir").
std::string knobs_summary(const knob_plan& plan);

/// Default delta-stepping bucket width for a graph: max_weight divided by
/// the branching factor (clamped to >= 1). Rationale: a settled vertex's
/// out-relaxations spread over ~avg_degree targets within max_weight of
/// it, so this width keeps a bucket's expected population near one
/// frontier "generation" — fewer rounds on meshes (low degree -> wide
/// buckets), less re-relaxation on hubs (high degree -> narrow buckets).
/// Output-invariant like every other knob: distances are exact for ANY
/// delta >= 1 (bfs/sssp.hpp), the pick only moves the speed.
std::int64_t pick_sssp_delta(const graph::graph_stats& st,
                             std::int64_t max_weight);

/// Publish tune.mode / tune.knobs / tune.why meta tags on `rec` (no-op
/// when rec is nullptr).
void tag_plan(obs::recorder* rec, tune_mode mode, const knob_plan& plan);

/// Re-tag `rec` as effectively fixed because the sharded (BSP) drivers
/// pin their own knobs and ignore the picker. Called by the api layer
/// when a non-fixed request runs with shards > 1, *after* tag_plan, so
/// the emitted metrics say what actually happened instead of advertising
/// an auto plan that was never applied (no-op when rec is nullptr).
void tag_sharded_pin(obs::recorder* rec);

/// The profile a non-fixed mode consults: auto_pick -> host_profile();
/// calibrate -> a quick measured profile, cached for the process.
const calibration_profile& profile_for_mode(tune_mode m);

}  // namespace micg::tune
