// Betweenness centrality (Brandes' algorithm) — the paper's §I names it
// as the "computationally expensive centrality measure" BFS underpins
// [Brandes 2001]. One BFS + dependency accumulation per source; sources
// are distributed over threads (the standard coarse-grained
// parallelization), each worker owning private traversal state and
// accumulating into a per-worker score vector merged at the end.
#pragma once

#include <cstdint>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/rt/exec.hpp"

namespace micg::bfs {

struct centrality_options {
  rt::exec ex;
  /// Number of source vertices to sample (0 or >= |V| means exact: all
  /// sources). Sampled sources are evenly spaced for determinism.
  /// Width-independent (64-bit) so the options work with every layout.
  std::int64_t sample_sources = 0;
};

/// Exact (or source-sampled) betweenness centrality on the unweighted
/// undirected graph. Endpoint pairs are counted once per unordered pair;
/// scores of sampled runs are scaled by |V|/samples.
template <micg::graph::CsrGraph G>
std::vector<double> betweenness_centrality(const G& g,
                                           const centrality_options& opt);

/// Sequential reference implementation (used by tests).
template <micg::graph::CsrGraph G>
std::vector<double> betweenness_centrality_seq(
    const G& g, std::int64_t sample_sources = 0);

}  // namespace micg::bfs
