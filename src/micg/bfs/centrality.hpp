// Betweenness centrality (Brandes' algorithm) — the paper's §I names it
// as the "computationally expensive centrality measure" BFS underpins
// [Brandes 2001]. One shortest-path DAG + dependency accumulation per
// source; the traversals ride on the batched multi-source BFS (msbfs) by
// default, so 64 sources share one edge sweep per level, and the
// accumulation passes walk a canonical (distance, id) vertex order — the
// same order the repeated single-source path uses, so both modes produce
// the same scores (bit-identical at one thread; the usual floating-point
// merge reordering across workers otherwise).
#pragma once

#include <cstdint>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/rt/exec.hpp"

namespace micg::bfs {

struct centrality_options {
  rt::exec ex;
  /// Number of source vertices to sample (0 or >= |V| means exact: all
  /// sources). Sampled sources are evenly spaced for determinism.
  /// Width-independent (64-bit) so the options work with every layout.
  std::int64_t sample_sources = 0;
  /// Ride on batched multi-source BFS (the default): sources are tiled
  /// into 64-lane batches, one shared traversal per batch, per-lane depth
  /// extraction feeding the accumulation. false restores one BFS per
  /// source (the historical path, kept for ablation and as the test
  /// oracle).
  bool batched = true;
  /// Lanes per batch when batched (1..64).
  int batch_lanes = 64;
};

/// Exact (or source-sampled) betweenness centrality on the unweighted
/// undirected graph. Endpoint pairs are counted once per unordered pair;
/// scores of sampled runs are scaled by |V|/samples.
template <micg::graph::CsrGraph G>
std::vector<double> betweenness_centrality(const G& g,
                                           const centrality_options& opt);

/// Sequential reference implementation (used by tests). Runs the repeated
/// single-source path at one thread.
template <micg::graph::CsrGraph G>
std::vector<double> betweenness_centrality_seq(
    const G& g, std::int64_t sample_sources = 0);

}  // namespace micg::bfs
