#include "micg/bfs/sharded.hpp"

#include <atomic>
#include <cstddef>
#include <vector>

#include "micg/obs/obs.hpp"
#include "micg/rt/shard_exec.hpp"
#include "micg/support/assert.hpp"

namespace micg::bfs {

namespace {

using level_array = std::vector<std::atomic<int>>;

/// CAS claim of local slot `lv` for `depth`; exactly-once per shard.
inline bool claim_local(level_array& dist, std::int64_t lv, int depth) {
  int expected = -1;
  return dist[static_cast<std::size_t>(lv)].compare_exchange_strong(
      expected, depth, std::memory_order_relaxed, std::memory_order_relaxed);
}

}  // namespace

bfs_result sharded_bfs(const graph::sharded_csr& sg, std::int64_t source,
                       const sharded_bfs_options& opt) {
  const std::int64_t n = sg.num_vertices();
  MICG_CHECK(source >= 0 && source < n, "source out of range");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  const int shards = sg.shards();

  rt::shard_group group(shards, opt.ex);
  rt::mailbox_grid<std::int64_t> mail(shards, opt.ex.threads);

  // Shard-local level arrays over *local* ids. Owned slots carry the BFS
  // level; ghost slots double as the per-shard send-dedup filter (a shard
  // messages each remote vertex at most once — later claims would carry a
  // deeper, useless level, and the owner ignores stale messages anyway).
  std::vector<level_array> dist(static_cast<std::size_t>(shards));
  std::vector<std::vector<std::int64_t>> cur(static_cast<std::size_t>(shards));
  std::vector<std::vector<std::int64_t>> nxt(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    auto& d = dist[static_cast<std::size_t>(s)];
    d = level_array(static_cast<std::size_t>(sg.part(s).num_local()));
    for (auto& slot : d) slot.store(-1, std::memory_order_relaxed);
  }

  // Round bookkeeping shared across shards. Written before / read after a
  // barrier, so every shard sees the same totals and makes the same
  // continue/stop decision — the rounds are lock-step by construction.
  std::vector<std::int64_t> next_counts(static_cast<std::size_t>(shards), 0);
  std::vector<std::size_t> frontier_sizes;
  std::uint64_t exchanged_total = 0;
  int rounds = 0;

  {
    const int src_shard = sg.owner(source);
    auto& p = sg.part(src_shard);
    const std::int64_t lsrc = p.local_of_global(source);
    dist[static_cast<std::size_t>(src_shard)][static_cast<std::size_t>(lsrc)]
        .store(0, std::memory_order_relaxed);
    cur[static_cast<std::size_t>(src_shard)].push_back(lsrc);
    frontier_sizes.push_back(1);
  }

  group.run([&](int s) {
    const graph::shard_part& p = sg.part(s);
    level_array& d = dist[static_cast<std::size_t>(s)];
    rt::exec ex = group.shard_exec(s);
    // Per-worker discovery buffers, merged serially after each level (the
    // tls-queue idiom without the extra type).
    std::vector<std::vector<std::int64_t>> local_next(
        static_cast<std::size_t>(ex.threads));

    int depth = 1;
    for (;;) {
      // Compute: expand this shard's slice of the frontier. Owned
      // discoveries go to the per-worker buffers; remote ones are claimed
      // on the ghost slot and mailed to the owner as global ids.
      auto& frontier = cur[static_cast<std::size_t>(s)];
      p.csr.visit([&](const auto& sc) {
        using LV = typename std::decay_t<decltype(sc)>::vertex_type;
        rt::for_range(
            ex, static_cast<std::int64_t>(frontier.size()),
            [&](std::int64_t b, std::int64_t e, int worker) {
              auto& out = local_next[static_cast<std::size_t>(worker)];
              for (std::int64_t i = b; i < e; ++i) {
                const std::int64_t lv = frontier[static_cast<std::size_t>(i)];
                for (const auto w : sc.neighbors(static_cast<LV>(lv))) {
                  const auto lw = static_cast<std::int64_t>(w);
                  if (!claim_local(d, lw, depth)) continue;
                  const std::int64_t gw = p.global_of_local(lw);
                  if (p.owns_global(gw)) {
                    out.push_back(lw);
                  } else {
                    mail.outbox(s, sg.owner(gw), worker).push_back(gw);
                  }
                }
              }
            });
      });

      // Barrier 1: publish this round's messages (one shard registers the
      // swap; the last arriver runs it while everyone is parked).
      group.barrier().arrive_and_wait(s == 0 ? std::function<void()>([&] {
        mail.swap();
        exchanged_total += mail.last_swap_messages();
        ++rounds;
      })
                                             : std::function<void()>());

      // Exchange: absorb remote discoveries (single-threaded per shard,
      // plain claims suffice — the CAS is just reused for uniformity),
      // then merge the worker buffers into the next frontier.
      auto& next = nxt[static_cast<std::size_t>(s)];
      mail.drain(s, [&](std::int64_t gv) {
        const std::int64_t lv = p.local_of_global(gv);
        if (claim_local(d, lv, depth)) next.push_back(lv);
      });
      for (auto& buf : local_next) {
        next.insert(next.end(), buf.begin(), buf.end());
        buf.clear();
      }
      next_counts[static_cast<std::size_t>(s)] =
          static_cast<std::int64_t>(next.size());

      // Barrier 2: everyone's counts are published; all shards compute
      // the same global frontier size and stop together. It also fences
      // the drained mailbox buffers before senders restage them.
      group.barrier().arrive_and_wait(
          s == 0 ? std::function<void()>([&] {
            std::size_t total = 0;
            for (std::int64_t c : next_counts) {
              total += static_cast<std::size_t>(c);
            }
            if (total > 0) frontier_sizes.push_back(total);
          })
                 : std::function<void()>());

      std::int64_t total = 0;
      for (std::int64_t c : next_counts) total += c;
      frontier.swap(next);
      next.clear();
      if (total == 0) break;
      ++depth;
    }
  });

  // Assemble the global result from the owned slices.
  bfs_result r;
  r.level.assign(static_cast<std::size_t>(n), -1);
  for (int s = 0; s < shards; ++s) {
    const graph::shard_part& p = sg.part(s);
    const level_array& d = dist[static_cast<std::size_t>(s)];
    for (std::int64_t v = p.owned_begin; v < p.owned_end; ++v) {
      const auto lv = static_cast<std::size_t>(p.owned_local_begin +
                                               (v - p.owned_begin));
      r.level[static_cast<std::size_t>(v)] =
          d[lv].load(std::memory_order_relaxed);
    }
  }
  r.num_levels = static_cast<int>(frontier_sizes.size());
  r.frontier_sizes = frontier_sizes;
  for (std::size_t f : frontier_sizes) r.reached += f;

  if (obs::recorder* rec = opt.ex.sink(); rec != nullptr) {
    rec->set_meta("kernel", "sharded_bfs");
    rec->set_value("shard.count", static_cast<double>(shards));
    rec->set_value("shard.cut_edges", static_cast<double>(sg.cut_edges()));
    rec->set_value("shard.rounds", static_cast<double>(rounds));
    rec->get_counter("shard.exchange.messages").add(0, exchanged_total);
    rec->get_counter("bfs.levels")
        .add(0, static_cast<std::uint64_t>(r.num_levels));
    rec->get_counter("bfs.reached")
        .add(0, static_cast<std::uint64_t>(r.reached));
  }
  return r;
}

}  // namespace micg::bfs
