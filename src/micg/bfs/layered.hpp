// Layered (level-synchronous) parallel BFS — Algorithm 7 of the paper —
// with the paper's six frontier/runtime variants (§IV-C, Figure 4):
//
//   OpenMP-Block            block-accessed queue, CAS-locked insertion
//   OpenMP-Block-relaxed    block-accessed queue, benign-race insertion
//   TBB-Block               same queue under the TBB-style simple partitioner
//   TBB-Block-relaxed       ... with benign-race insertion
//   OpenMP-TLS              SNAP-style thread-local queues, locked insertion
//   CilkPlus-Bag-relaxed    Leiserson–Schardl bag under work stealing
//
// "Locked" claims a vertex with a compare-and-swap on its level before
// queueing it, so every vertex is queued exactly once. "Relaxed" performs
// the check-then-store race Leiserson and Schardl proved benign: a vertex
// may be queued (and expanded) more than once, but every copy carries the
// same level, so the result is identical and the redundant work does not
// snowball (§III-C).
#pragma once

#include <string>
#include <vector>

#include "micg/bfs/seq.hpp"
#include "micg/graph/csr.hpp"
#include "micg/rt/exec.hpp"

namespace micg::bfs {

enum class bfs_variant {
  omp_block,
  omp_block_relaxed,
  tbb_block,
  tbb_block_relaxed,
  omp_tls,
  cilk_bag_relaxed,
};

/// Paper-style display name ("OpenMP-Block-relaxed", ...).
const char* bfs_variant_name(bfs_variant v);

/// Parse a display name back to the enum; throws micg::check_error on
/// unknown names (the inverse of bfs_variant_name, mirroring
/// rt::backend_name / rt::backend_from_name).
bfs_variant bfs_variant_from_name(const std::string& name);

/// All six variants in paper order.
std::vector<bfs_variant> all_bfs_variants();

struct parallel_bfs_options {
  bfs_variant variant = bfs_variant::omp_block_relaxed;
  /// Threads, per-level scheduling chunk, pool and metrics sink. The
  /// backend kind is decided by `variant` (ex.kind is ignored); the other
  /// fields apply to every variant.
  rt::exec ex;
  /// Block size of the block-accessed queue. 32 is the value "that yields
  /// the best performance in our implementation" (§V-D).
  int block = 32;
  /// Pennant node capacity for the bag variant (grainsize of [20]).
  int bag_grain = 128;
};

struct parallel_bfs_result : bfs_result {
  /// Queue slots consumed per level *including sentinel padding* (block
  /// variants only; empty otherwise). The overhead versus frontier_sizes
  /// is the cost of not compacting partially-filled blocks.
  std::vector<std::size_t> queue_slots_per_level;
};

/// Run layered parallel BFS from `source`. Levels are identical to
/// seq_bfs() for every variant (BFS levels are unique). Defined for every
/// shipped layout (instantiations in layered.cpp).
template <micg::graph::CsrGraph G>
parallel_bfs_result parallel_bfs(const G& g, typename G::vertex_type source,
                                 const parallel_bfs_options& opt);

}  // namespace micg::bfs
