// Bag of pennants — the Leiserson–Schardl frontier data structure [20]
// behind the paper's CilkPlus-Bag-relaxed BFS variant.
//
// A *pennant* of rank k is a tree of 2^k nodes: a root whose single child
// is the root of a complete binary tree of 2^k - 1 nodes. Two rank-k
// pennants merge into one rank-(k+1) pennant in O(1) pointer moves. A
// *bag* is an array ("backbone") holding at most one pennant per rank, so
// bag union is the carry-save addition the paper describes ("an algorithm
// similar to carry-add for integer addition", §IV-C). Every node stores up
// to `grain` vertices (the grainsize parameter of [20]) so traversal tasks
// are coarse enough to amortize scheduling.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/rt/scheduler.hpp"
#include "micg/rt/worker.hpp"

namespace micg::bfs {

namespace detail {
template <class VId>
struct basic_bag_node {
  std::vector<VId> items;
  basic_bag_node* left = nullptr;
  basic_bag_node* right = nullptr;
};
using bag_node = basic_bag_node<micg::graph::vertex_t>;
}  // namespace detail

template <std::signed_integral VId>
class basic_vertex_bag {
 public:
  using node = detail::basic_bag_node<VId>;

  static constexpr int default_grain = 128;

  explicit basic_vertex_bag(int grain = default_grain);
  ~basic_vertex_bag();

  basic_vertex_bag(basic_vertex_bag&& other) noexcept;
  basic_vertex_bag& operator=(basic_vertex_bag&& other) noexcept;
  basic_vertex_bag(const basic_vertex_bag&) = delete;
  basic_vertex_bag& operator=(const basic_vertex_bag&) = delete;

  /// Append one vertex (owner thread only; bags are per-thread and merged).
  void insert(VId v);

  /// Move all of `other`'s contents into this bag (carry-save backbone
  /// addition + hopper consolidation). `other` is left empty.
  void absorb(basic_vertex_bag&& other);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] int grain() const { return grain_; }

  /// Number of pennants in the backbone (for tests; == popcount of the
  /// full-node count).
  [[nodiscard]] std::size_t backbone_pennants() const;

  /// Remove all contents.
  void clear();

  /// Sequential visit of every vertex.
  template <typename F>
  void for_each(F&& f) const {
    if (hopper_ != nullptr) {
      for (auto v : hopper_->items) f(v);
    }
    for (auto* p : backbone_) {
      if (p != nullptr) walk_seq(p, f);
    }
  }

  /// Parallel traversal: `f(span_of_vertices, worker)` is called once per
  /// pennant node, with pennant subtrees spawned as work-stealing tasks.
  /// Must be called from inside sched.run() (the L-S algorithm walks the
  /// bag with nested cilk_spawn).
  template <typename F>
  void traverse_parallel(rt::task_scheduler& sched, const F& f) const {
    rt::task_group g(sched);
    if (hopper_ != nullptr && !hopper_->items.empty()) {
      const node* h = hopper_;
      g.spawn([h, &f] {
        f(std::span<const VId>(h->items), rt::this_worker_id());
      });
    }
    for (auto* p : backbone_) {
      if (p != nullptr) {
        const node* n = p;
        g.spawn([&sched, n, &f] { walk_par(sched, n, f); });
      }
    }
    g.wait();
  }

 private:
  template <typename F>
  static void walk_seq(const node* n, F&& f) {
    for (auto v : n->items) f(v);
    if (n->left != nullptr) walk_seq(n->left, f);
    if (n->right != nullptr) walk_seq(n->right, f);
  }

  template <typename F>
  static void walk_par(rt::task_scheduler& sched, const node* n,
                       const F& f) {
    f(std::span<const VId>(n->items), rt::this_worker_id());
    if (n->left != nullptr && n->right != nullptr) {
      rt::task_group g(sched);
      const node* l = n->left;
      g.spawn([&sched, l, &f] { walk_par(sched, l, f); });
      walk_par(sched, n->right, f);
      g.wait();
    } else if (n->left != nullptr) {
      walk_par(sched, n->left, f);
    } else if (n->right != nullptr) {
      walk_par(sched, n->right, f);
    }
  }

  /// Push a full rank-0 pennant into the backbone with carry propagation.
  void push_pennant(node* p);

  int grain_;
  std::size_t size_ = 0;
  node* hopper_ = nullptr;         ///< partially filled node
  std::vector<node*> backbone_;    ///< backbone_[k]: rank-k pennant
};

using vertex_bag = basic_vertex_bag<micg::graph::vertex_t>;

}  // namespace micg::bfs
