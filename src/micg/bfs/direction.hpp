// Direction-optimizing BFS (Beamer, Asanović, Patterson SC'12) — a
// beyond-the-paper ablation (§VI points at further algorithm engineering).
//
// Top-down steps expand the frontier through the block-accessed queue like
// OpenMP-Block-relaxed; when the frontier grows past a threshold the search
// switches to bottom-up steps, where every unvisited vertex scans its
// neighbors for a parent in the current frontier (early exit on first hit),
// then switches back when the frontier shrinks. On the high-diameter FEM
// meshes of Table I the frontiers stay narrow and the heuristic rarely
// fires; on RMAT graphs it collapses the few huge middle levels.
#pragma once

#include "micg/bfs/layered.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/graph/csr.hpp"
#include "micg/rt/edge_partition.hpp"
#include "micg/rt/exec.hpp"

namespace micg::bfs {

struct direction_options {
  /// Threads, chunk, pool and metrics sink (the backend kind is fixed to
  /// the OpenMP-dynamic substrate).
  rt::exec ex;
  int block = 32;
  /// Switch to bottom-up when frontier edges exceed |E|/alpha (Beamer's
  /// alpha); back to top-down when the frontier shrinks below |V|/beta.
  double alpha = 14.0;
  double beta = 24.0;
  /// Bottom-up steps iterate a 64-vertex-per-word bitmap frontier with
  /// countr_zero word scans instead of testing every vertex's level; the
  /// levels produced are identical (tested). false restores the
  /// per-vertex visited scan.
  bool bitmap = true;
  /// How bottom-up steps split the vertex range across workers; edge
  /// balancing stops skewed (RMAT) degree distributions from serializing
  /// on hub rows. Only the bitmap path honors this knob.
  rt::partition_mode partition = rt::partition_mode::edge;
};

struct direction_bfs_result : bfs_result {
  int top_down_steps = 0;
  int bottom_up_steps = 0;
};

/// Run direction-optimizing BFS from `source`. Levels are identical to
/// seq_bfs(). Defined for every shipped layout.
template <micg::graph::CsrGraph G>
direction_bfs_result direction_optimizing_bfs(const G& g,
                                              typename G::vertex_type source,
                                              const direction_options& opt);

}  // namespace micg::bfs
