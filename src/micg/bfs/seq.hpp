// Sequential FIFO breadth-first search (Algorithm 6 of the paper) — the
// correctness reference and the 1-thread baseline for every parallel
// variant.
#pragma once

#include <cstddef>
#include <vector>

#include "micg/graph/csr.hpp"

namespace micg::bfs {

struct bfs_result {
  /// Per-vertex BFS level; source = 0, unreachable = -1.
  std::vector<int> level;
  /// Number of levels (max level + 1); 0 for an empty graph.
  int num_levels = 0;
  /// Vertices discovered at each level; frontier_sizes[0] == 1 (source).
  std::vector<std::size_t> frontier_sizes;
  /// Vertices reached (== sum of frontier_sizes).
  std::size_t reached = 0;
};

/// Textbook queue-based BFS from `source`. Defined for every shipped
/// layout (instantiations in seq.cpp).
template <micg::graph::CsrGraph G>
bfs_result seq_bfs(const G& g, typename G::vertex_type source);

}  // namespace micg::bfs
