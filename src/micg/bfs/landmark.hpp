// Landmark (pivot) distance sketches over one graph snapshot.
//
// A landmark index precomputes BFS levels from k pivot vertices — one
// msbfs batch, so the whole precompute costs roughly one edge sweep — and
// then answers distance queries in O(k) by the triangle inequality:
//
//   max_L |d(L,u) - d(L,v)|  <=  d(u,v)  <=  min_L d(L,u) + d(L,v)
//
// over the pivots L that reach both endpoints. Two special cases are
// *exact*: u == v is 0, and a pivot that reaches exactly one endpoint
// proves the endpoints sit in different components (d = unreachable).
// When no pivot reaches either endpoint the index knows nothing and the
// caller must fall back to an exact traversal.
//
// Pivots are the k highest-degree vertices (ties to the lower id) — hub
// landmarks give the tightest sums on the skewed-degree inputs the paper
// studies, and the deterministic rule keeps every answer reproducible.
// The serving layer (serve/service.hpp) keys one index per graph epoch;
// an index is immutable once built, so concurrent readers share it
// freely.
#pragma once

#include <cstdint>
#include <vector>

#include "micg/bfs/msbfs.hpp"
#include "micg/graph/any_csr.hpp"
#include "micg/graph/csr.hpp"
#include "micg/rt/exec.hpp"

namespace micg::bfs {

/// Pivots per index; one msbfs lane word covers the whole precompute.
inline constexpr int landmark_max_count = msbfs_max_lanes;

struct landmark_options {
  /// Pivot count; clamped to the vertex count. [1, landmark_max_count].
  int count = 16;
  /// Execution of the msbfs precompute (threads, chunk, pool, sink).
  rt::exec ex;
};

/// What the index can say about one (u, v) pair in O(k).
struct landmark_estimate {
  /// Smallest upper bound min_L d(L,u)+d(L,v); -1 when no pivot reaches
  /// both endpoints.
  std::int64_t upper = -1;
  /// Largest lower bound max_L |d(L,u)-d(L,v)| (0 when no pivot applies).
  std::int64_t lower = 0;
  /// Some pivot reaches exactly one endpoint: the endpoints are in
  /// different components, so the exact distance is "unreachable".
  bool disjoint = false;
  /// The estimate is exact: u == v, disjoint components, or the bounds
  /// met. When neither `exact` nor `upper >= 0` nor `disjoint`, the
  /// index knows nothing about the pair.
  bool exact = false;
};

/// Immutable distance sketch of one snapshot.
class landmark_index {
 public:
  landmark_index() = default;

  [[nodiscard]] std::int64_t num_vertices() const { return n_; }
  [[nodiscard]] int count() const {
    return static_cast<int>(pivots_.size());
  }
  [[nodiscard]] const std::vector<std::int64_t>& pivots() const {
    return pivots_;
  }

  /// Pivot p's BFS level of v (-1 unreachable). Bit-identical to
  /// seq_bfs(g, pivots()[p]).level[v].
  [[nodiscard]] int pivot_level(int p, std::int64_t v) const {
    return dist_[static_cast<std::size_t>(p) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(v)];
  }

  /// O(count()) bounds for d(u, v). Throws micg::check_error when an
  /// endpoint is out of range.
  [[nodiscard]] landmark_estimate estimate(std::int64_t u,
                                           std::int64_t v) const;

 private:
  template <micg::graph::CsrGraph G>
  friend landmark_index build_landmarks(const G& g,
                                        const landmark_options& opt);

  std::int64_t n_ = 0;
  std::vector<std::int64_t> pivots_;
  std::vector<int> dist_;  ///< pivot-major, count() x n_
};

/// Build an index over `g` (one msbfs batch from the chosen pivots).
/// Defined for every shipped layout.
template <micg::graph::CsrGraph G>
landmark_index build_landmarks(const G& g, const landmark_options& opt);

/// Layout-dispatching convenience for any_csr holders.
landmark_index build_landmarks(const graph::any_csr& g,
                               const landmark_options& opt);

}  // namespace micg::bfs
