#include "micg/bfs/direction.hpp"

#include <atomic>
#include <bit>
#include <cstdint>

#include "micg/obs/obs.hpp"
#include "micg/rt/exec.hpp"
#include "micg/support/assert.hpp"

namespace micg::bfs {

namespace {

/// Bits per frontier/visited bitmap word.
constexpr std::int64_t kWordBits = 64;

inline bool test_bit(const std::uint64_t* words, std::int64_t i) {
  return (words[i / kWordBits] >> (i % kWordBits)) & 1u;
}

}  // namespace

template <micg::graph::CsrGraph G>
direction_bfs_result direction_optimizing_bfs(const G& g,
                                              typename G::vertex_type source,
                                              const direction_options& opt) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  MICG_CHECK(source >= 0 && source < n, "source out of range");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");

  std::vector<std::atomic<int>> level(static_cast<std::size_t>(n));
  for (auto& l : level) l.store(-1, std::memory_order_relaxed);

  rt::exec ex = opt.ex;
  ex.kind = rt::backend::omp_dynamic;

  std::vector<VId> frontier{source};
  level[static_cast<std::size_t>(source)].store(0,
                                                std::memory_order_relaxed);

  direction_bfs_result r;
  const double edge_threshold =
      static_cast<double>(g.num_directed_edges()) / opt.alpha;
  const double vertex_threshold = static_cast<double>(n) / opt.beta;

  // Bitmap state (allocated lazily on the first bottom-up step): visited
  // and frontier bits packed 64 vertices per word, plus a word-granular
  // CSR prefix for edge-balanced partitioning of the word scan.
  const std::int64_t nwords =
      (static_cast<std::int64_t>(n) + kWordBits - 1) / kWordBits;
  std::vector<std::uint64_t> visited;
  std::vector<std::uint64_t> cur;
  std::vector<std::uint64_t> nxt;
  std::vector<std::int64_t> wxadj;
  bool bitmaps_fresh = false;   // visited/cur mirror the level array
  bool frontier_in_vector = true;

  std::int64_t frontier_size = 1;
  std::int64_t frontier_edges = static_cast<std::int64_t>(g.degree(source));

  int depth = 1;
  bool bottom_up = false;
  while (frontier_size > 0) {
    // Heuristic: frontier out-edges decide the direction of this step.
    if (!bottom_up &&
        static_cast<double>(frontier_edges) > edge_threshold) {
      bottom_up = true;
    } else if (bottom_up &&
               static_cast<double>(frontier_size) < vertex_threshold) {
      bottom_up = false;
    }

    if (bottom_up && opt.bitmap) {
      ++r.bottom_up_steps;
      if (visited.empty()) {
        visited.assign(static_cast<std::size_t>(nwords), 0);
        cur.assign(static_cast<std::size_t>(nwords), 0);
        nxt.assign(static_cast<std::size_t>(nwords), 0);
        wxadj.resize(static_cast<std::size_t>(nwords) + 1);
        const auto* xadj = g.xadj().data();
        for (std::int64_t w = 0; w <= nwords; ++w) {
          const std::int64_t v =
              std::min<std::int64_t>(w * kWordBits, n);
          wxadj[static_cast<std::size_t>(w)] =
              static_cast<std::int64_t>(xadj[v]);
        }
      }
      if (!bitmaps_fresh) {
        // Entering bottom-up from a top-down run: rebuild both bitmaps
        // from the level array (cheaper than maintaining them through
        // every top-down CAS; transitions are rare).
        rt::for_range(ex, nwords, [&](std::int64_t b, std::int64_t e, int) {
          for (std::int64_t w = b; w < e; ++w) {
            std::uint64_t vis = 0;
            std::uint64_t front = 0;
            const std::int64_t lo = w * kWordBits;
            const std::int64_t hi =
                std::min<std::int64_t>(lo + kWordBits, n);
            for (std::int64_t v = lo; v < hi; ++v) {
              const int lv = level[static_cast<std::size_t>(v)].load(
                  std::memory_order_relaxed);
              if (lv != -1) vis |= 1ull << (v - lo);
              if (lv == depth - 1) front |= 1ull << (v - lo);
            }
            visited[static_cast<std::size_t>(w)] = vis;
            cur[static_cast<std::size_t>(w)] = front;
          }
        });
        bitmaps_fresh = true;
      }

      // Word-scan bottom-up step: every word is owned by exactly one
      // chunk, so visited/nxt updates need no atomics; only the step
      // totals are reduced.
      std::atomic<std::int64_t> found{0};
      std::atomic<std::int64_t> found_edges{0};
      rt::for_range_graph(
          ex, nwords, wxadj.data(), opt.partition,
          [&](std::int64_t b, std::int64_t e, int) {
            std::int64_t local_found = 0;
            std::int64_t local_edges = 0;
            for (std::int64_t w = b; w < e; ++w) {
              std::uint64_t unvis = ~visited[static_cast<std::size_t>(w)];
              const std::int64_t lo = w * kWordBits;
              if (n - lo < kWordBits) {
                unvis &= (1ull << (n - lo)) - 1;  // mask tail past |V|
              }
              std::uint64_t added = 0;
              while (unvis != 0) {
                const int bit = std::countr_zero(unvis);
                unvis &= unvis - 1;
                const auto v = static_cast<VId>(lo + bit);
                for (VId p : g.neighbors(v)) {
                  if (test_bit(cur.data(), static_cast<std::int64_t>(p))) {
                    level[static_cast<std::size_t>(v)].store(
                        depth, std::memory_order_relaxed);
                    added |= 1ull << bit;
                    ++local_found;
                    local_edges += static_cast<std::int64_t>(g.degree(v));
                    break;  // first parent suffices
                  }
                }
              }
              visited[static_cast<std::size_t>(w)] |= added;
              nxt[static_cast<std::size_t>(w)] = added;
            }
            found.fetch_add(local_found, std::memory_order_relaxed);
            found_edges.fetch_add(local_edges, std::memory_order_relaxed);
          });
      cur.swap(nxt);
      frontier_size = found.load(std::memory_order_relaxed);
      frontier_edges = found_edges.load(std::memory_order_relaxed);
      frontier_in_vector = false;
    } else {
      if (bottom_up) {
        // Legacy per-vertex visited scan (opt.bitmap == false).
        ++r.bottom_up_steps;
      } else {
        ++r.top_down_steps;
      }
      if (!frontier_in_vector) {
        // Back from bitmap bottom-up: unpack the (now small) frontier.
        frontier.clear();
        for (std::int64_t w = 0; w < nwords; ++w) {
          std::uint64_t word = cur[static_cast<std::size_t>(w)];
          while (word != 0) {
            const int bit = std::countr_zero(word);
            word &= word - 1;
            frontier.push_back(static_cast<VId>(w * kWordBits + bit));
          }
        }
        frontier_in_vector = true;
      }

      std::vector<VId> next(static_cast<std::size_t>(n));
      std::atomic<std::size_t> cursor{0};
      if (bottom_up) {
        // Every unvisited vertex looks backwards for a parent one level up.
        rt::for_range(
            ex, n, [&](std::int64_t b, std::int64_t e, int) {
              for (std::int64_t i = b; i < e; ++i) {
                const auto v = static_cast<VId>(i);
                if (level[static_cast<std::size_t>(v)].load(
                        std::memory_order_relaxed) != -1) {
                  continue;
                }
                for (VId w : g.neighbors(v)) {
                  if (level[static_cast<std::size_t>(w)].load(
                          std::memory_order_relaxed) == depth - 1) {
                    level[static_cast<std::size_t>(v)].store(
                        depth, std::memory_order_relaxed);
                    next[cursor.fetch_add(1, std::memory_order_relaxed)] = v;
                    break;  // first parent suffices
                  }
                }
              }
            });
      } else {
        rt::for_range(
            ex, static_cast<std::int64_t>(frontier.size()),
            [&](std::int64_t b, std::int64_t e, int) {
              for (std::int64_t i = b; i < e; ++i) {
                const VId v = frontier[static_cast<std::size_t>(i)];
                for (VId w : g.neighbors(v)) {
                  int expected = -1;
                  if (level[static_cast<std::size_t>(w)]
                          .compare_exchange_strong(
                              expected, depth, std::memory_order_relaxed,
                              std::memory_order_relaxed)) {
                    next[cursor.fetch_add(1, std::memory_order_relaxed)] = w;
                  }
                }
              }
            });
      }
      next.resize(cursor.load(std::memory_order_relaxed));
      frontier.swap(next);
      frontier_size = static_cast<std::int64_t>(frontier.size());
      frontier_edges = 0;
      for (VId v : frontier) {
        frontier_edges += static_cast<std::int64_t>(g.degree(v));
      }
      bitmaps_fresh = false;
    }
    ++depth;
  }

  r.level.resize(static_cast<std::size_t>(n));
  int max_level = -1;
  for (VId v = 0; v < n; ++v) {
    r.level[static_cast<std::size_t>(v)] =
        level[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    if (r.level[static_cast<std::size_t>(v)] > max_level) {
      max_level = r.level[static_cast<std::size_t>(v)];
    }
  }
  r.num_levels = max_level + 1;
  r.frontier_sizes.assign(static_cast<std::size_t>(r.num_levels), 0);
  for (int lv : r.level) {
    if (lv >= 0) {
      ++r.frontier_sizes[static_cast<std::size_t>(lv)];
      ++r.reached;
    }
  }
  if (obs::recorder* rec = opt.ex.sink(); rec != nullptr) {
    rec->set_meta("kernel", "direction_optimizing_bfs");
    rec->set_meta("bfs.frontier_mode", opt.bitmap ? "bitmap" : "queue");
    rec->set_meta("partition", rt::partition_mode_name(opt.partition));
    rec->get_counter("bfs.top_down_steps")
        .add(0, static_cast<std::uint64_t>(r.top_down_steps));
    rec->get_counter("bfs.bottom_up_steps")
        .add(0, static_cast<std::uint64_t>(r.bottom_up_steps));
    rec->get_counter("bfs.levels")
        .add(0, static_cast<std::uint64_t>(r.num_levels));
    rec->get_counter("bfs.reached")
        .add(0, static_cast<std::uint64_t>(r.reached));
  }
  return r;
}

#define MICG_INSTANTIATE(G)                                 \
  template direction_bfs_result direction_optimizing_bfs<G>( \
      const G&, typename G::vertex_type, const direction_options&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::bfs
