#include "micg/bfs/direction.hpp"

#include <atomic>

#include "micg/obs/obs.hpp"
#include "micg/rt/exec.hpp"
#include "micg/support/assert.hpp"

namespace micg::bfs {

template <micg::graph::CsrGraph G>
direction_bfs_result direction_optimizing_bfs(const G& g,
                                              typename G::vertex_type source,
                                              const direction_options& opt) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  MICG_CHECK(source >= 0 && source < n, "source out of range");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");

  std::vector<std::atomic<int>> level(static_cast<std::size_t>(n));
  for (auto& l : level) l.store(-1, std::memory_order_relaxed);

  rt::exec ex = opt.ex;
  ex.kind = rt::backend::omp_dynamic;

  std::vector<VId> frontier{source};
  level[static_cast<std::size_t>(source)].store(0,
                                                std::memory_order_relaxed);

  direction_bfs_result r;
  const double edge_threshold =
      static_cast<double>(g.num_directed_edges()) / opt.alpha;
  const double vertex_threshold = static_cast<double>(n) / opt.beta;

  int depth = 1;
  bool bottom_up = false;
  while (!frontier.empty()) {
    // Heuristic: frontier out-edges decide the direction of this step.
    std::int64_t frontier_edges = 0;
    for (VId v : frontier) {
      frontier_edges += static_cast<std::int64_t>(g.degree(v));
    }
    if (!bottom_up &&
        static_cast<double>(frontier_edges) > edge_threshold) {
      bottom_up = true;
    } else if (bottom_up &&
               static_cast<double>(frontier.size()) < vertex_threshold) {
      bottom_up = false;
    }

    std::vector<VId> next(static_cast<std::size_t>(n));
    std::atomic<std::size_t> cursor{0};
    if (bottom_up) {
      ++r.bottom_up_steps;
      // Every unvisited vertex looks backwards for a parent one level up.
      rt::for_range(
          ex, n, [&](std::int64_t b, std::int64_t e, int) {
            for (std::int64_t i = b; i < e; ++i) {
              const auto v = static_cast<VId>(i);
              if (level[static_cast<std::size_t>(v)].load(
                      std::memory_order_relaxed) != -1) {
                continue;
              }
              for (VId w : g.neighbors(v)) {
                if (level[static_cast<std::size_t>(w)].load(
                        std::memory_order_relaxed) == depth - 1) {
                  level[static_cast<std::size_t>(v)].store(
                      depth, std::memory_order_relaxed);
                  next[cursor.fetch_add(1, std::memory_order_relaxed)] = v;
                  break;  // first parent suffices
                }
              }
            }
          });
    } else {
      ++r.top_down_steps;
      rt::for_range(
          ex, static_cast<std::int64_t>(frontier.size()),
          [&](std::int64_t b, std::int64_t e, int) {
            for (std::int64_t i = b; i < e; ++i) {
              const VId v = frontier[static_cast<std::size_t>(i)];
              for (VId w : g.neighbors(v)) {
                int expected = -1;
                if (level[static_cast<std::size_t>(w)]
                        .compare_exchange_strong(expected, depth,
                                                 std::memory_order_relaxed,
                                                 std::memory_order_relaxed)) {
                  next[cursor.fetch_add(1, std::memory_order_relaxed)] = w;
                }
              }
            }
          });
    }
    next.resize(cursor.load(std::memory_order_relaxed));
    frontier.swap(next);
    ++depth;
  }

  r.level.resize(static_cast<std::size_t>(n));
  int max_level = -1;
  for (VId v = 0; v < n; ++v) {
    r.level[static_cast<std::size_t>(v)] =
        level[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    if (r.level[static_cast<std::size_t>(v)] > max_level) {
      max_level = r.level[static_cast<std::size_t>(v)];
    }
  }
  r.num_levels = max_level + 1;
  r.frontier_sizes.assign(static_cast<std::size_t>(r.num_levels), 0);
  for (int lv : r.level) {
    if (lv >= 0) {
      ++r.frontier_sizes[static_cast<std::size_t>(lv)];
      ++r.reached;
    }
  }
  if (obs::recorder* rec = opt.ex.sink(); rec != nullptr) {
    rec->set_meta("kernel", "direction_optimizing_bfs");
    rec->get_counter("bfs.top_down_steps")
        .add(0, static_cast<std::uint64_t>(r.top_down_steps));
    rec->get_counter("bfs.bottom_up_steps")
        .add(0, static_cast<std::uint64_t>(r.bottom_up_steps));
    rec->get_counter("bfs.levels")
        .add(0, static_cast<std::uint64_t>(r.num_levels));
    rec->get_counter("bfs.reached")
        .add(0, static_cast<std::uint64_t>(r.reached));
  }
  return r;
}

#define MICG_INSTANTIATE(G)                                 \
  template direction_bfs_result direction_optimizing_bfs<G>( \
      const G&, typename G::vertex_type, const direction_options&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::bfs
