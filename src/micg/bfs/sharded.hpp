// Bulk-synchronous sharded BFS.
//
// Level-synchronous BFS over a graph::sharded_csr: each shard expands its
// owned slice of the frontier on its own thread pool; discoveries of
// remote vertices travel as global-id messages through a
// rt::mailbox_grid, swapped at the round barrier. Because expansion is
// level-synchronous — a message sent in round d can only label a vertex
// with level d — the computed levels are *exactly* those of seq_bfs for
// every shard count (the property tests pin this across layouts, shard
// counts, and generator families).
#pragma once

#include <cstdint>

#include "micg/bfs/seq.hpp"
#include "micg/graph/shard.hpp"
#include "micg/rt/exec.hpp"

namespace micg::bfs {

struct sharded_bfs_options {
  /// Per-shard execution: `ex.threads` workers per shard on a private
  /// pool; kind/chunk apply to each shard's frontier loop. ex.shards is
  /// ignored here — the shard count comes from the partitioned graph.
  rt::exec ex;
};

/// Run BSP BFS from global vertex `source` over a partitioned graph.
/// Levels are identical to seq_bfs on the unpartitioned graph.
bfs_result sharded_bfs(const graph::sharded_csr& sg, std::int64_t source,
                       const sharded_bfs_options& opt);

}  // namespace micg::bfs
