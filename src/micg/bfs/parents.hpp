// Parent-array BFS and the Graph500-style validator.
//
// The Graph500 benchmark (the paper's §I reference point for BFS) reports
// a parent tree rather than levels and validates it with five structural
// checks. parallel_bfs_parents() runs the block-accessed-queue BFS while
// recording parents; validate_parent_tree() implements the checks.
#pragma once

#include <span>
#include <vector>

#include "micg/bfs/layered.hpp"
#include "micg/graph/csr.hpp"

namespace micg::bfs {

template <class VId>
struct basic_parent_bfs_result {
  /// parent[v]: BFS-tree parent of v; parent[source] == source;
  /// unreachable vertices hold invalid_vertex_v<VId>.
  std::vector<VId> parent;
  std::vector<int> level;
  std::size_t reached = 0;
};

using parent_bfs_result = basic_parent_bfs_result<micg::graph::vertex_t>;

/// Layered BFS (relaxed block queue) that also records a valid parent for
/// every discovered vertex.
template <micg::graph::CsrGraph G>
basic_parent_bfs_result<typename G::vertex_type> parallel_bfs_parents(
    const G& g, typename G::vertex_type source,
    const parallel_bfs_options& opt);

/// Graph500-style validation of a parent tree:
///  1. the source is its own parent;
///  2. every reached vertex has a reached parent and the edge
///     (v, parent[v]) exists in the graph;
///  3. levels implied by the tree equal BFS levels (each vertex one
///     deeper than its parent, consistent with the true distance);
///  4. exactly the source's component is reached.
template <micg::graph::CsrGraph G>
bool validate_parent_tree(const G& g, typename G::vertex_type source,
                          std::span<const typename G::vertex_type> parent);

}  // namespace micg::bfs
