#include "micg/bfs/bag.hpp"

#include <utility>

#include "micg/support/assert.hpp"

namespace micg::bfs {

using detail::bag_node;

namespace {

/// Union of two pennants of equal rank k -> one pennant of rank k+1.
/// O(1): y's root becomes x's root's child; y keeps its own subtree on the
/// right (Leiserson–Schardl, Figure 2 of [20]).
bag_node* pennant_union(bag_node* x, bag_node* y) {
  y->right = x->left;
  x->left = y;
  return x;
}

/// Delete a pennant tree iteratively (pennants can hold millions of nodes;
/// no recursion on the destruction path).
void delete_tree(bag_node* root) {
  std::vector<bag_node*> stack{root};
  while (!stack.empty()) {
    bag_node* n = stack.back();
    stack.pop_back();
    if (n->left != nullptr) stack.push_back(n->left);
    if (n->right != nullptr) stack.push_back(n->right);
    delete n;
  }
}

}  // namespace

vertex_bag::vertex_bag(int grain) : grain_(grain) {
  MICG_CHECK(grain >= 1, "bag grain must be positive");
}

vertex_bag::~vertex_bag() { clear(); }

vertex_bag::vertex_bag(vertex_bag&& other) noexcept
    : grain_(other.grain_),
      size_(other.size_),
      hopper_(other.hopper_),
      backbone_(std::move(other.backbone_)) {
  other.size_ = 0;
  other.hopper_ = nullptr;
  other.backbone_.clear();
}

vertex_bag& vertex_bag::operator=(vertex_bag&& other) noexcept {
  if (this != &other) {
    clear();
    grain_ = other.grain_;
    size_ = other.size_;
    hopper_ = other.hopper_;
    backbone_ = std::move(other.backbone_);
    other.size_ = 0;
    other.hopper_ = nullptr;
    other.backbone_.clear();
  }
  return *this;
}

void vertex_bag::clear() {
  if (hopper_ != nullptr) {
    delete hopper_;
    hopper_ = nullptr;
  }
  for (auto* p : backbone_) {
    if (p != nullptr) delete_tree(p);
  }
  backbone_.clear();
  size_ = 0;
}

void vertex_bag::insert(micg::graph::vertex_t v) {
  if (hopper_ == nullptr) {
    hopper_ = new bag_node;
    hopper_->items.reserve(static_cast<std::size_t>(grain_));
  }
  hopper_->items.push_back(v);
  ++size_;
  if (hopper_->items.size() == static_cast<std::size_t>(grain_)) {
    push_pennant(std::exchange(hopper_, nullptr));
  }
}

void vertex_bag::push_pennant(bag_node* p) {
  // Binary increment with carries: rank-k collision -> union to rank k+1.
  std::size_t k = 0;
  for (;;) {
    if (k == backbone_.size()) backbone_.push_back(nullptr);
    if (backbone_[k] == nullptr) {
      backbone_[k] = p;
      return;
    }
    p = pennant_union(backbone_[k], p);
    backbone_[k] = nullptr;
    ++k;
  }
}

void vertex_bag::absorb(vertex_bag&& other) {
  MICG_CHECK(grain_ == other.grain_,
             "cannot absorb a bag with a different grain");
  // Consolidate the other bag's hopper first: cheaper than a dedicated
  // hopper-merge path and bounded by one grain of work.
  if (other.hopper_ != nullptr) {
    for (auto v : other.hopper_->items) insert(v);
    other.size_ -= other.hopper_->items.size();
    delete other.hopper_;
    other.hopper_ = nullptr;
  }
  // Backbone carry-save addition: each of other's pennants is one
  // increment at its rank.
  for (std::size_t k = 0; k < other.backbone_.size(); ++k) {
    bag_node* p = other.backbone_[k];
    if (p == nullptr) continue;
    other.backbone_[k] = nullptr;
    // push at rank k: same carry loop as push_pennant but starting at k.
    std::size_t rank = k;
    for (;;) {
      // The incoming pennant's rank can exceed this backbone's length
      // (absorbing a larger bag into a smaller one): extend with empty
      // slots up to and including `rank`.
      while (rank >= backbone_.size()) backbone_.push_back(nullptr);
      if (backbone_[rank] == nullptr) {
        backbone_[rank] = p;
        break;
      }
      p = pennant_union(backbone_[rank], p);
      backbone_[rank] = nullptr;
      ++rank;
    }
  }
  size_ += other.size_;
  other.size_ = 0;
  other.backbone_.clear();
}

std::size_t vertex_bag::backbone_pennants() const {
  std::size_t count = 0;
  for (auto* p : backbone_) {
    if (p != nullptr) ++count;
  }
  return count;
}

}  // namespace micg::bfs
