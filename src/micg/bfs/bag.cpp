#include "micg/bfs/bag.hpp"

#include <utility>

#include "micg/support/assert.hpp"

namespace micg::bfs {

namespace {

/// Union of two pennants of equal rank k -> one pennant of rank k+1.
/// O(1): y's root becomes x's root's child; y keeps its own subtree on the
/// right (Leiserson–Schardl, Figure 2 of [20]).
template <class VId>
detail::basic_bag_node<VId>* pennant_union(detail::basic_bag_node<VId>* x,
                                           detail::basic_bag_node<VId>* y) {
  y->right = x->left;
  x->left = y;
  return x;
}

/// Delete a pennant tree iteratively (pennants can hold millions of nodes;
/// no recursion on the destruction path).
template <class VId>
void delete_tree(detail::basic_bag_node<VId>* root) {
  std::vector<detail::basic_bag_node<VId>*> stack{root};
  while (!stack.empty()) {
    auto* n = stack.back();
    stack.pop_back();
    if (n->left != nullptr) stack.push_back(n->left);
    if (n->right != nullptr) stack.push_back(n->right);
    delete n;
  }
}

}  // namespace

template <std::signed_integral VId>
basic_vertex_bag<VId>::basic_vertex_bag(int grain) : grain_(grain) {
  MICG_CHECK(grain >= 1, "bag grain must be positive");
}

template <std::signed_integral VId>
basic_vertex_bag<VId>::~basic_vertex_bag() {
  clear();
}

template <std::signed_integral VId>
basic_vertex_bag<VId>::basic_vertex_bag(basic_vertex_bag&& other) noexcept
    : grain_(other.grain_),
      size_(other.size_),
      hopper_(other.hopper_),
      backbone_(std::move(other.backbone_)) {
  other.size_ = 0;
  other.hopper_ = nullptr;
  other.backbone_.clear();
}

template <std::signed_integral VId>
basic_vertex_bag<VId>& basic_vertex_bag<VId>::operator=(
    basic_vertex_bag&& other) noexcept {
  if (this != &other) {
    clear();
    grain_ = other.grain_;
    size_ = other.size_;
    hopper_ = other.hopper_;
    backbone_ = std::move(other.backbone_);
    other.size_ = 0;
    other.hopper_ = nullptr;
    other.backbone_.clear();
  }
  return *this;
}

template <std::signed_integral VId>
void basic_vertex_bag<VId>::clear() {
  if (hopper_ != nullptr) {
    delete hopper_;
    hopper_ = nullptr;
  }
  for (auto* p : backbone_) {
    if (p != nullptr) delete_tree(p);
  }
  backbone_.clear();
  size_ = 0;
}

template <std::signed_integral VId>
void basic_vertex_bag<VId>::insert(VId v) {
  if (hopper_ == nullptr) {
    hopper_ = new node;
    hopper_->items.reserve(static_cast<std::size_t>(grain_));
  }
  hopper_->items.push_back(v);
  ++size_;
  if (hopper_->items.size() == static_cast<std::size_t>(grain_)) {
    push_pennant(std::exchange(hopper_, nullptr));
  }
}

template <std::signed_integral VId>
void basic_vertex_bag<VId>::push_pennant(node* p) {
  // Binary increment with carries: rank-k collision -> union to rank k+1.
  std::size_t k = 0;
  for (;;) {
    if (k == backbone_.size()) backbone_.push_back(nullptr);
    if (backbone_[k] == nullptr) {
      backbone_[k] = p;
      return;
    }
    p = pennant_union(backbone_[k], p);
    backbone_[k] = nullptr;
    ++k;
  }
}

template <std::signed_integral VId>
void basic_vertex_bag<VId>::absorb(basic_vertex_bag&& other) {
  MICG_CHECK(grain_ == other.grain_,
             "cannot absorb a bag with a different grain");
  // Consolidate the other bag's hopper first: cheaper than a dedicated
  // hopper-merge path and bounded by one grain of work.
  if (other.hopper_ != nullptr) {
    for (auto v : other.hopper_->items) insert(v);
    other.size_ -= other.hopper_->items.size();
    delete other.hopper_;
    other.hopper_ = nullptr;
  }
  // Backbone carry-save addition: each of other's pennants is one
  // increment at its rank.
  for (std::size_t k = 0; k < other.backbone_.size(); ++k) {
    node* p = other.backbone_[k];
    if (p == nullptr) continue;
    other.backbone_[k] = nullptr;
    // push at rank k: same carry loop as push_pennant but starting at k.
    std::size_t rank = k;
    for (;;) {
      // The incoming pennant's rank can exceed this backbone's length
      // (absorbing a larger bag into a smaller one): extend with empty
      // slots up to and including `rank`.
      while (rank >= backbone_.size()) backbone_.push_back(nullptr);
      if (backbone_[rank] == nullptr) {
        backbone_[rank] = p;
        break;
      }
      p = pennant_union(backbone_[rank], p);
      backbone_[rank] = nullptr;
      ++rank;
    }
  }
  size_ += other.size_;
  other.size_ = 0;
  other.backbone_.clear();
}

template <std::signed_integral VId>
std::size_t basic_vertex_bag<VId>::backbone_pennants() const {
  std::size_t count = 0;
  for (auto* p : backbone_) {
    if (p != nullptr) ++count;
  }
  return count;
}

template class basic_vertex_bag<std::int32_t>;
template class basic_vertex_bag<std::int64_t>;

}  // namespace micg::bfs
