// Block-accessed shared queue — the paper's novel frontier data structure
// (§IV-C).
//
// The next-level frontier is one contiguous array. Each thread reserves a
// block of `block_size` slots with a single atomic fetch-and-add and fills
// it privately; at the end of the level, partially filled blocks are padded
// with a sentinel (invalid_vertex) instead of being compacted, so consumers
// simply skip sentinel entries. This trades a slightly longer queue for
// the elimination of per-push synchronization ("by keeping the block size
// small (but not so small so that we do not use atomics too often), the
// overhead is minimized").
//
// Templated on the vertex id width: the queue stores raw vertex ids, so a
// csr32 traversal moves half the frontier bytes of a csr64 one.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/cacheline.hpp"

namespace micg::bfs {

template <std::signed_integral VId>
class basic_block_queue {
 public:
  /// `capacity` is the maximum number of slots (vertices + sentinel
  /// padding) the queue can hold; `max_workers` bounds the number of
  /// concurrent handles. Pushing past capacity throws (the BFS driver
  /// sizes queues so this cannot happen).
  basic_block_queue(std::size_t capacity, int block_size, int max_workers);

  basic_block_queue(const basic_block_queue&) = delete;
  basic_block_queue& operator=(const basic_block_queue&) = delete;

  /// Per-worker push cursor. Each worker uses its own slot (indexed by the
  /// dense worker id) for the whole level, then the driver calls
  /// flush_all().
  void push(int worker, VId v) {
    auto& h = handles_[static_cast<std::size_t>(worker)].value;
    if (h.pos == h.end) acquire_block(h);
    slots_[static_cast<std::size_t>(h.pos++)] = v;
  }

  /// Pad every worker's unfinished block with the sentinel (§IV-C: "we
  /// fill the remaining of the block with a sentinel value (an invalid
  /// vertex ID, such as -1)"). Call once per level, after all pushes.
  void flush_all();

  /// All slots handed out so far, sentinels included. Valid after
  /// flush_all().
  [[nodiscard]] std::span<const VId> raw() const {
    return {slots_.data(),
            static_cast<std::size_t>(cursor_.load(std::memory_order_acquire))};
  }

  /// Slots including sentinel padding.
  [[nodiscard]] std::size_t size_with_sentinels() const {
    return static_cast<std::size_t>(cursor_.load(std::memory_order_acquire));
  }

  /// Valid (non-sentinel) entries; O(size) scan, used by tests/driver.
  [[nodiscard]] std::size_t count_valid() const;

  /// Empty the queue for the next level (handles are reset too).
  void reset();

  /// Swap contents with `other` (the per-level cur/next exchange of
  /// Algorithm 7).
  ///
  /// Precondition: both queues are *quiescent* — no concurrent push() or
  /// acquire_block() anywhere, and every handed-out block has been closed
  /// by flush_all() (or the queue was reset()). The driver calls swap only
  /// between levels, after the parallel region joined. This is checked:
  /// swap asserts no worker still holds an open block, because the
  /// two-atomic cursor exchange below is not atomic as a whole and would
  /// silently lose pushes if producers were live.
  void swap(basic_block_queue& other) noexcept(false);

  [[nodiscard]] int block_size() const { return block_size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  struct handle {
    std::int64_t pos = 0;  ///< next free slot in the current block
    std::int64_t end = 0;  ///< one past the current block
  };

  void acquire_block(handle& h) {
    const std::int64_t b =
        cursor_.fetch_add(block_size_, std::memory_order_relaxed);
    MICG_CHECK(b + block_size_ <= static_cast<std::int64_t>(slots_.size()),
               "block_queue capacity exhausted");
    h.pos = b;
    h.end = b + block_size_;
  }

  std::vector<VId> slots_;
  int block_size_;
  alignas(cacheline_size) std::atomic<std::int64_t> cursor_{0};
  std::unique_ptr<micg::padded<handle>[]> handles_;
  int max_workers_;
};

using block_queue = basic_block_queue<micg::graph::vertex_t>;

template <std::signed_integral VId>
inline void swap(basic_block_queue<VId>& a,
                 basic_block_queue<VId>& b) noexcept(false) {
  a.swap(b);
}

}  // namespace micg::bfs
