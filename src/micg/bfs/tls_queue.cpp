#include "micg/bfs/tls_queue.hpp"

#include "micg/support/assert.hpp"

namespace micg::bfs {

tls_frontier::tls_frontier(int max_workers)
    : locals_(std::make_unique<
              micg::padded<std::vector<micg::graph::vertex_t>>[]>(
          static_cast<std::size_t>(max_workers))),
      max_workers_(max_workers) {
  MICG_CHECK(max_workers >= 1, "need at least one worker");
}

void tls_frontier::merge_into(std::vector<micg::graph::vertex_t>& out) {
  out.clear();
  out.reserve(total_size());
  for (int w = 0; w < max_workers_; ++w) {
    auto& local = locals_[static_cast<std::size_t>(w)].value;
    out.insert(out.end(), local.begin(), local.end());
    local.clear();
  }
}

std::size_t tls_frontier::total_size() const {
  std::size_t total = 0;
  for (int w = 0; w < max_workers_; ++w) {
    total += locals_[static_cast<std::size_t>(w)].value.size();
  }
  return total;
}

}  // namespace micg::bfs
