#include "micg/bfs/tls_queue.hpp"

#include "micg/support/assert.hpp"

namespace micg::bfs {

template <std::signed_integral VId>
basic_tls_frontier<VId>::basic_tls_frontier(int max_workers)
    : locals_(std::make_unique<micg::padded<std::vector<VId>>[]>(
          static_cast<std::size_t>(max_workers))),
      max_workers_(max_workers) {
  MICG_CHECK(max_workers >= 1, "need at least one worker");
}

template <std::signed_integral VId>
void basic_tls_frontier<VId>::merge_into(std::vector<VId>& out) {
  out.clear();
  out.reserve(total_size());
  for (int w = 0; w < max_workers_; ++w) {
    auto& local = locals_[static_cast<std::size_t>(w)].value;
    out.insert(out.end(), local.begin(), local.end());
    local.clear();
  }
}

template <std::signed_integral VId>
std::size_t basic_tls_frontier<VId>::total_size() const {
  std::size_t total = 0;
  for (int w = 0; w < max_workers_; ++w) {
    total += locals_[static_cast<std::size_t>(w)].value.size();
  }
  return total;
}

template class basic_tls_frontier<std::int32_t>;
template class basic_tls_frontier<std::int64_t>;

}  // namespace micg::bfs
