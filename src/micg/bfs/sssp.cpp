#include "micg/bfs/sssp.hpp"

#include <atomic>
#include <functional>
#include <limits>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "micg/bfs/block_queue.hpp"
#include "micg/obs/obs.hpp"
#include "micg/rt/edge_partition.hpp"
#include "micg/rt/scheduler.hpp"
#include "micg/support/assert.hpp"

namespace micg::bfs {

using micg::graph::invalid_vertex_v;
using micg::graph::weight_t;

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

/// Buckets at or below this edge mass are relaxed serially on the calling
/// thread. Delta-stepping's bucket spectrum has a long tail of tiny
/// buckets (often a handful of vertices each); launching two parallel
/// regions per bucket for those costs far more than the relaxations
/// themselves and single-handedly erases the parallel win.
constexpr std::int64_t kSerialEdgeCutoff = 4096;

/// CAS-min on a distance slot; true when this call won the decrease.
inline bool relax_min(std::atomic<std::int64_t>& slot, std::int64_t nd) {
  std::int64_t old = slot.load(std::memory_order_relaxed);
  while (nd < old) {
    if (slot.compare_exchange_weak(old, nd, std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace

template <micg::graph::CsrGraph G>
sssp_result delta_stepping_sssp(const G& g, typename G::vertex_type source,
                                std::span<const graph::weight_t> weights,
                                const sssp_options& opt) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  MICG_CHECK(source >= 0 && source < n, "source out of range");
  MICG_CHECK(opt.delta >= 1, "sssp delta must be >= 1");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  MICG_CHECK(opt.block >= 1, "block size must be positive");
  MICG_CHECK(weights.size() ==
                 static_cast<std::size_t>(g.num_directed_edges()),
             "weights array is not adjacency-parallel");

  const std::int64_t delta = opt.delta;
  const int threads = opt.ex.threads;
  std::vector<std::atomic<std::int64_t>> dist(static_cast<std::size_t>(n));
  for (auto& d : dist) d.store(kInf, std::memory_order_relaxed);
  dist[static_cast<std::size_t>(source)].store(0, std::memory_order_relaxed);

  // bins[worker][b] holds the vertices this worker filed into bucket b
  // (absolute index, grown on demand). Worker-private: filled without
  // synchronization during a relax pass, drained between passes.
  std::vector<std::vector<std::vector<VId>>> bins(
      static_cast<std::size_t>(threads));
  bins[0].resize(1);
  bins[0][0].push_back(source);

  auto file = [&](int worker, std::int64_t b, VId v) {
    auto& mine = bins[static_cast<std::size_t>(worker)];
    if (static_cast<std::size_t>(b) >= mine.size()) {
      mine.resize(static_cast<std::size_t>(b) + 1);
    }
    mine[static_cast<std::size_t>(b)].push_back(v);
  };

  rt::exec ex = opt.ex;
  // Reuse one scheduler across all passes for the cilk/tbb backends.
  rt::task_scheduler sched(ex.pool_or_global(), ex.threads);
  if (ex.sched == nullptr && !rt::is_omp(ex.kind)) ex.sched = &sched;

  // The current bucket's frontier: the block-accessed queue, re-created
  // only when a bucket outgrows the largest one seen so far.
  std::optional<basic_block_queue<VId>> frontier;
  std::vector<std::int64_t> fd;  // frontier-degree prefix, reused
  std::vector<VId> scratch;      // serial-path bucket assembly, reused
  std::atomic<std::int64_t> relaxations{0};

  sssp_result r;
  r.delta = delta;

  std::int64_t bucket = 0;
  std::int64_t counted = -1;  // last bucket index added to r.buckets
  while (bucket >= 0) {
    if (bucket != counted) {
      ++r.buckets;
      counted = bucket;
    }

    // Assemble the bucket's frontier: drain every worker's bin for this
    // bucket into the block queue.
    std::size_t total = 0;
    std::int64_t edge_mass = 0;
    for (const auto& mine : bins) {
      if (static_cast<std::size_t>(bucket) < mine.size()) {
        const auto& slot = mine[static_cast<std::size_t>(bucket)];
        total += slot.size();
        for (const VId v : slot) {
          edge_mass += static_cast<std::int64_t>(g.degree(v));
        }
      }
    }

    const std::int64_t bucket_floor = bucket * delta;

    if (threads == 1 || edge_mass <= kSerialEdgeCutoff) {
      // Serial path: relax the bucket inline, no frontier machinery.
      scratch.clear();
      for (auto& mine : bins) {
        if (static_cast<std::size_t>(bucket) >= mine.size()) continue;
        auto& slot = mine[static_cast<std::size_t>(bucket)];
        scratch.insert(scratch.end(), slot.begin(), slot.end());
        slot.clear();
      }
      std::int64_t local = 0;
      for (const VId v : scratch) {
        const std::int64_t dv =
            dist[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
        if (dv < bucket_floor) continue;  // settled by an earlier bucket
        const auto nbrs = g.neighbors(v);
        const auto* wv =
            weights.data() +
            static_cast<std::size_t>(g.xadj()[static_cast<std::size_t>(v)]);
        for (std::size_t j = 0; j < nbrs.size(); ++j) {
          const VId w = nbrs[j];
          const std::int64_t nd = dv + wv[j];
          if (relax_min(dist[static_cast<std::size_t>(w)], nd)) {
            ++local;
            file(0, nd / delta, w);
          }
        }
      }
      if (local > 0) {
        relaxations.fetch_add(local, std::memory_order_relaxed);
      }
      ++r.rounds;

      std::int64_t next = -1;
      for (const auto& mine : bins) {
        for (auto b = static_cast<std::size_t>(bucket); b < mine.size();
             ++b) {
          if (!mine[b].empty()) {
            const auto cand = static_cast<std::int64_t>(b);
            if (next < 0 || cand < next) next = cand;
            break;
          }
        }
      }
      bucket = next;
      continue;
    }

    const std::size_t need = total +
                             static_cast<std::size_t>(threads) *
                                 static_cast<std::size_t>(opt.block) +
                             64;
    if (!frontier.has_value() || frontier->capacity() < need) {
      frontier.emplace(need, opt.block, threads);
    } else {
      frontier->reset();
    }
    {
      rt::exec flush_ex = ex;
      flush_ex.chunk = 1;  // one dispatch unit per worker bin
      rt::for_range(flush_ex, static_cast<std::int64_t>(threads),
                    [&](std::int64_t b, std::int64_t e, int worker) {
                      for (std::int64_t j = b; j < e; ++j) {
                        auto& bin = bins[static_cast<std::size_t>(j)];
                        if (static_cast<std::size_t>(bucket) >= bin.size()) {
                          continue;
                        }
                        auto& slot = bin[static_cast<std::size_t>(bucket)];
                        for (VId v : slot) frontier->push(worker, v);
                        slot.clear();
                      }
                    });
    }
    frontier->flush_all();

    // Edge-balance the relax pass over a frontier-degree prefix
    // (sentinel slots weigh nothing), so one hub entry cannot serialize
    // the bucket the way it would under a per-entry split.
    const auto entries = frontier->raw();
    const auto s = static_cast<std::int64_t>(entries.size());
    fd.assign(static_cast<std::size_t>(s) + 1, 0);
    for (std::int64_t i = 0; i < s; ++i) {
      const VId v = entries[static_cast<std::size_t>(i)];
      const std::int64_t deg = v == invalid_vertex_v<VId>
                                   ? 0
                                   : static_cast<std::int64_t>(g.degree(v));
      fd[static_cast<std::size_t>(i) + 1] =
          fd[static_cast<std::size_t>(i)] + deg;
    }

    rt::for_range_edges(
        ex, s, fd.data(), [&](std::int64_t b, std::int64_t e, int worker) {
          std::int64_t local = 0;
          for (std::int64_t i = b; i < e; ++i) {
            const VId v = entries[static_cast<std::size_t>(i)];
            if (v == invalid_vertex_v<VId>) continue;  // sentinel (§IV-C)
            const std::int64_t dv =
                dist[static_cast<std::size_t>(v)].load(
                    std::memory_order_relaxed);
            // Settled below this bucket by an earlier one — stale entry.
            if (dv < bucket_floor) continue;
            const auto nbrs = g.neighbors(v);
            const auto* wv =
                weights.data() +
                static_cast<std::size_t>(
                    g.xadj()[static_cast<std::size_t>(v)]);
            for (std::size_t j = 0; j < nbrs.size(); ++j) {
              const VId w = nbrs[j];
              const std::int64_t nd = dv + wv[j];
              if (relax_min(dist[static_cast<std::size_t>(w)], nd)) {
                ++local;
                file(worker, nd / delta, w);
              }
            }
          }
          if (local > 0) {
            relaxations.fetch_add(local, std::memory_order_relaxed);
          }
        });
    ++r.rounds;

    // Light relaxations can re-file vertices into the bucket just
    // processed: repeat it until it drains, then advance to the lowest
    // non-empty bucket anywhere (none left -> done).
    std::int64_t next = -1;
    for (const auto& mine : bins) {
      for (auto b = static_cast<std::size_t>(bucket); b < mine.size(); ++b) {
        if (!mine[b].empty()) {
          const auto cand = static_cast<std::int64_t>(b);
          if (next < 0 || cand < next) next = cand;
          break;
        }
      }
    }
    bucket = next;
  }

  r.relaxations = relaxations.load(std::memory_order_relaxed);
  r.dist.resize(static_cast<std::size_t>(n));
  for (std::size_t v = 0; v < r.dist.size(); ++v) {
    const std::int64_t d = dist[v].load(std::memory_order_relaxed);
    r.dist[v] = d == kInf ? -1 : d;
    if (d != kInf) ++r.reached;
  }

  if (obs::recorder* rec = opt.ex.sink(); rec != nullptr) {
    rec->set_meta("kernel", "sssp");
    rec->set_value("sssp.delta", static_cast<double>(delta));
    rec->get_counter("sssp.relaxations")
        .add(0, static_cast<std::uint64_t>(r.relaxations));
    rec->get_counter("sssp.buckets")
        .add(0, static_cast<std::uint64_t>(r.buckets));
    rec->get_counter("sssp.rounds")
        .add(0, static_cast<std::uint64_t>(r.rounds));
    rec->get_counter("sssp.reached")
        .add(0, static_cast<std::uint64_t>(r.reached));
  }
  return r;
}

template <micg::graph::CsrGraph G>
std::vector<std::int64_t> seq_dijkstra(
    const G& g, typename G::vertex_type source,
    std::span<const graph::weight_t> weights) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  MICG_CHECK(source >= 0 && source < n, "source out of range");
  MICG_CHECK(weights.size() ==
                 static_cast<std::size_t>(g.num_directed_edges()),
             "weights array is not adjacency-parallel");

  std::vector<std::int64_t> dist(static_cast<std::size_t>(n), kInf);
  using entry = std::pair<std::int64_t, VId>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(source)] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[static_cast<std::size_t>(v)]) continue;  // stale entry
    const auto nbrs = g.neighbors(v);
    const auto* wv =
        weights.data() +
        static_cast<std::size_t>(g.xadj()[static_cast<std::size_t>(v)]);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const VId w = nbrs[j];
      const std::int64_t nd = d + wv[j];
      auto& dw = dist[static_cast<std::size_t>(w)];
      if (nd < dw) {
        dw = nd;
        heap.emplace(nd, w);
      }
    }
  }
  for (auto& d : dist) {
    if (d == kInf) d = -1;
  }
  return dist;
}

#define MICG_INSTANTIATE(G)                                                \
  template sssp_result delta_stepping_sssp<G>(                             \
      const G&, typename G::vertex_type, std::span<const graph::weight_t>, \
      const sssp_options&);                                                \
  template std::vector<std::int64_t> seq_dijkstra<G>(                      \
      const G&, typename G::vertex_type, std::span<const graph::weight_t>);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::bfs
