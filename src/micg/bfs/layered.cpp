#include "micg/bfs/layered.hpp"

#include <atomic>
#include <utility>

#include "micg/bfs/bag.hpp"
#include "micg/bfs/block_queue.hpp"
#include "micg/bfs/tls_queue.hpp"
#include "micg/obs/obs.hpp"
#include "micg/rt/exec.hpp"
#include "micg/rt/scheduler.hpp"
#include "micg/support/assert.hpp"

namespace micg::bfs {

using micg::graph::invalid_vertex_v;

const char* bfs_variant_name(bfs_variant v) {
  switch (v) {
    case bfs_variant::omp_block: return "OpenMP-Block";
    case bfs_variant::omp_block_relaxed: return "OpenMP-Block-relaxed";
    case bfs_variant::tbb_block: return "TBB-Block";
    case bfs_variant::tbb_block_relaxed: return "TBB-Block-relaxed";
    case bfs_variant::omp_tls: return "OpenMP-TLS";
    case bfs_variant::cilk_bag_relaxed: return "CilkPlus-Bag-relaxed";
  }
  return "unknown";
}

std::vector<bfs_variant> all_bfs_variants() {
  return {bfs_variant::omp_block,       bfs_variant::omp_block_relaxed,
          bfs_variant::tbb_block,       bfs_variant::tbb_block_relaxed,
          bfs_variant::omp_tls,         bfs_variant::cilk_bag_relaxed};
}

bfs_variant bfs_variant_from_name(const std::string& name) {
  for (bfs_variant v : all_bfs_variants()) {
    if (name == bfs_variant_name(v)) return v;
  }
  MICG_CHECK(false, "unknown BFS variant name: " + name);
  return bfs_variant::omp_block_relaxed;  // unreachable
}

namespace {

using level_array = std::vector<std::atomic<int>>;

/// Try to claim w for `next_level`. Locked: CAS, exactly-once semantics.
/// Relaxed: Leiserson–Schardl benign race — check then plain store.
template <class VId>
inline bool claim_vertex(level_array& level, VId w, int next_level,
                         bool relaxed) {
  auto& slot = level[static_cast<std::size_t>(w)];
  if (relaxed) {
    if (slot.load(std::memory_order_relaxed) == -1) {
      slot.store(next_level, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  int expected = -1;
  return slot.compare_exchange_strong(expected, next_level,
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed);
}

/// Derive the final result (frontier sizes, counts) from the level array.
/// Uniform across variants; also the place where relaxed duplicates vanish
/// (levels are unique even if queue entries were not).
parallel_bfs_result finalize(const level_array& level) {
  parallel_bfs_result r;
  r.level.resize(level.size());
  int max_level = -1;
  for (std::size_t v = 0; v < level.size(); ++v) {
    r.level[v] = level[v].load(std::memory_order_relaxed);
    if (r.level[v] > max_level) max_level = r.level[v];
  }
  r.num_levels = max_level + 1;
  r.frontier_sizes.assign(static_cast<std::size_t>(r.num_levels), 0);
  for (int lv : r.level) {
    if (lv >= 0) {
      ++r.frontier_sizes[static_cast<std::size_t>(lv)];
      ++r.reached;
    }
  }
  return r;
}

/// The block-queue variants: two block-accessed queues swapped per level,
/// the vertex loop scheduled by an OpenMP-dynamic or TBB-simple backend.
template <micg::graph::CsrGraph G>
parallel_bfs_result bfs_block(const G& g, typename G::vertex_type source,
                              const parallel_bfs_options& opt,
                              bool tbb_style, bool relaxed) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  level_array level(static_cast<std::size_t>(n));
  for (auto& l : level) l.store(-1, std::memory_order_relaxed);

  // Capacity: every vertex once, plus sentinel padding (one partial block
  // per worker per level is repacked on reset, so `threads * block`
  // suffices), plus generous headroom for relaxed duplicates. The queue
  // checks the bound; overflow would require a duplicate storm the benign
  // race cannot produce in practice.
  const std::size_t cap =
      2 * static_cast<std::size_t>(n) +
      static_cast<std::size_t>(opt.ex.threads) *
          static_cast<std::size_t>(opt.block) +
      64;
  basic_block_queue<VId> cur(cap, opt.block, opt.ex.threads);
  basic_block_queue<VId> next(cap, opt.block, opt.ex.threads);

  rt::exec ex = opt.ex;
  ex.kind = tbb_style ? rt::backend::tbb_simple : rt::backend::omp_dynamic;
  // Reuse one scheduler across all levels for the TBB-style backend.
  rt::task_scheduler sched(ex.pool_or_global(), ex.threads);
  if (tbb_style) ex.sched = &sched;
  obs::recorder* rec = opt.ex.sink();

  level[static_cast<std::size_t>(source)].store(0,
                                                std::memory_order_relaxed);
  cur.push(0, source);
  cur.flush_all();

  parallel_bfs_result partial;
  int depth = 1;
  while (cur.count_valid() > 0) {
    partial.queue_slots_per_level.push_back(cur.size_with_sentinels());
    obs::span level_span =
        rec != nullptr ? rec->start_span("bfs.level", depth - 1)
                       : obs::span();
    level_span.value(
        "queue_slots",
        static_cast<double>(partial.queue_slots_per_level.back()));
    next.reset();
    const auto entries = cur.raw();
    rt::for_range(
        ex, static_cast<std::int64_t>(entries.size()),
        [&](std::int64_t b, std::int64_t e, int worker) {
          for (std::int64_t i = b; i < e; ++i) {
            const VId v = entries[static_cast<std::size_t>(i)];
            if (v == invalid_vertex_v<VId>) continue;  // sentinel (§IV-C)
            for (VId w : g.neighbors(v)) {
              if (claim_vertex(level, w, depth, relaxed)) {
                next.push(worker, w);
              }
            }
          }
        });
    next.flush_all();
    cur.swap(next);
    ++depth;
  }

  auto r = finalize(level);
  r.queue_slots_per_level = std::move(partial.queue_slots_per_level);
  return r;
}

/// SNAP-style variant: thread-local queues merged per level, exactly-once
/// insertion via CAS claim (the "lock"), with the paper's improvement of
/// testing the level before attempting the claim.
template <micg::graph::CsrGraph G>
parallel_bfs_result bfs_tls(const G& g, typename G::vertex_type source,
                            const parallel_bfs_options& opt) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  level_array level(static_cast<std::size_t>(n));
  for (auto& l : level) l.store(-1, std::memory_order_relaxed);

  rt::exec ex = opt.ex;
  ex.kind = rt::backend::omp_dynamic;
  obs::recorder* rec = opt.ex.sink();

  basic_tls_frontier<VId> locals(opt.ex.threads);
  std::vector<VId> cur{source};
  std::vector<VId> next;
  level[static_cast<std::size_t>(source)].store(0,
                                                std::memory_order_relaxed);

  int depth = 1;
  while (!cur.empty()) {
    obs::span level_span =
        rec != nullptr ? rec->start_span("bfs.level", depth - 1)
                       : obs::span();
    level_span.value("frontier", static_cast<double>(cur.size()));
    rt::for_range(
        ex, static_cast<std::int64_t>(cur.size()),
        [&](std::int64_t b, std::int64_t e, int worker) {
          for (std::int64_t i = b; i < e; ++i) {
            const VId v = cur[static_cast<std::size_t>(i)];
            for (VId w : g.neighbors(v)) {
              // Check before locking (§IV-C: "checking if a vertex is
              // traversed before attempting to lock it").
              if (level[static_cast<std::size_t>(w)].load(
                      std::memory_order_relaxed) != -1) {
                continue;
              }
              if (claim_vertex(level, w, depth, /*relaxed=*/false)) {
                locals.push(worker, w);
              }
            }
          }
        });
    locals.merge_into(next);
    cur.swap(next);
    ++depth;
  }
  return finalize(level);
}

/// Bag variant: per-worker bags filled under work stealing, merged with
/// carry-save bag union at each level (CilkPlus-Bag-relaxed).
template <micg::graph::CsrGraph G>
parallel_bfs_result bfs_bag(const G& g, typename G::vertex_type source,
                            const parallel_bfs_options& opt) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  level_array level(static_cast<std::size_t>(n));
  for (auto& l : level) l.store(-1, std::memory_order_relaxed);

  rt::task_scheduler sched(opt.ex.pool_or_global(), opt.ex.threads);
  obs::recorder* rec = opt.ex.sink();

  std::vector<basic_vertex_bag<VId>> worker_bags;
  worker_bags.reserve(static_cast<std::size_t>(opt.ex.threads));
  for (int t = 0; t < opt.ex.threads; ++t) {
    worker_bags.emplace_back(opt.bag_grain);
  }

  basic_vertex_bag<VId> cur(opt.bag_grain);
  level[static_cast<std::size_t>(source)].store(0,
                                                std::memory_order_relaxed);
  cur.insert(source);

  int depth = 1;
  while (!cur.empty()) {
    obs::span level_span =
        rec != nullptr ? rec->start_span("bfs.level", depth - 1)
                       : obs::span();
    sched.run([&] {
      cur.traverse_parallel(
          sched, [&](std::span<const VId> items, int worker) {
            for (VId v : items) {
              for (VId w : g.neighbors(v)) {
                if (claim_vertex(level, w, depth, /*relaxed=*/true)) {
                  worker_bags[static_cast<std::size_t>(worker)].insert(w);
                }
              }
            }
          });
    });
    basic_vertex_bag<VId> merged(opt.bag_grain);
    for (auto& b : worker_bags) merged.absorb(std::move(b));
    cur = std::move(merged);
    ++depth;
  }
  return finalize(level);
}

template <micg::graph::CsrGraph G>
parallel_bfs_result run_variant(const G& g, typename G::vertex_type source,
                                const parallel_bfs_options& opt) {
  switch (opt.variant) {
    case bfs_variant::omp_block:
      return bfs_block(g, source, opt, /*tbb_style=*/false,
                       /*relaxed=*/false);
    case bfs_variant::omp_block_relaxed:
      return bfs_block(g, source, opt, /*tbb_style=*/false,
                       /*relaxed=*/true);
    case bfs_variant::tbb_block:
      return bfs_block(g, source, opt, /*tbb_style=*/true,
                       /*relaxed=*/false);
    case bfs_variant::tbb_block_relaxed:
      return bfs_block(g, source, opt, /*tbb_style=*/true, /*relaxed=*/true);
    case bfs_variant::omp_tls:
      return bfs_tls(g, source, opt);
    case bfs_variant::cilk_bag_relaxed:
      return bfs_bag(g, source, opt);
  }
  MICG_CHECK(false, "unknown BFS variant");
  return {};
}

}  // namespace

template <micg::graph::CsrGraph G>
parallel_bfs_result parallel_bfs(const G& g, typename G::vertex_type source,
                                 const parallel_bfs_options& opt) {
  MICG_CHECK(source >= 0 && source < g.num_vertices(),
             "source out of range");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  MICG_CHECK(opt.block >= 1, "block size must be positive");
  auto r = run_variant(g, source, opt);
  if (obs::recorder* rec = opt.ex.sink(); rec != nullptr) {
    rec->set_meta("kernel", "parallel_bfs");
    rec->set_meta("variant", bfs_variant_name(opt.variant));
    rec->get_counter("bfs.levels")
        .add(0, static_cast<std::uint64_t>(r.num_levels));
    rec->get_counter("bfs.reached")
        .add(0, static_cast<std::uint64_t>(r.reached));
    std::size_t slots = 0;
    for (std::size_t s : r.queue_slots_per_level) slots += s;
    rec->get_counter("bfs.queue_slots").add(0, slots);
  }
  return r;
}

#define MICG_INSTANTIATE(G)                      \
  template parallel_bfs_result parallel_bfs<G>(  \
      const G&, typename G::vertex_type, const parallel_bfs_options&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::bfs
