// Delta-stepping single-source shortest paths (Meyer & Sanders) over the
// weighted CSR core (graph/weighted.hpp).
//
// Tentative distances live in one atomic int64 array relaxed by CAS-min;
// vertices are grouped into buckets of width `delta` by tentative
// distance. Each round processes the lowest non-empty bucket: the bucket's
// frontier is assembled into the paper's block-accessed queue (§IV-C —
// the same basic_block_queue every BFS variant uses), expansion is
// edge-balanced over a per-round frontier-degree prefix via
// rt/edge_partition, and successful relaxations file their target into
// per-worker bucket bins. A relaxation can re-file a vertex into the
// *current* bucket (a light edge within the bucket's width); the round
// repeats until the current bucket drains, then advances — the
// optimistic-iteration shape of the coloring kernels, applied to
// priorities. With positive integer weights every relaxation out of
// bucket k lands in a bucket >= k, so when bucket k drains all distances
// below (k+1)*delta are final and the result equals Dijkstra's exactly —
// for ANY delta, which is what the property tests sweep.
//
// delta = 1 degenerates to Dijkstra-with-buckets (most rounds, least
// wasted work); delta = +inf to Bellman-Ford (one bucket, most re-work).
// The stats-driven default pick lives in micg::tune (the kernel itself
// takes a concrete delta >= 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/graph/weighted.hpp"
#include "micg/rt/exec.hpp"

namespace micg::bfs {

struct sssp_options {
  /// Threads, scheduling chunk, pool and metrics sink. The backend kind
  /// dispatches the frontier loops like every other kernel.
  rt::exec ex;
  /// Bucket width (>= 1). Distances are exact for every value; the knob
  /// only trades rounds against re-relaxation.
  std::int64_t delta = 16;
  /// Block size of the block-accessed frontier queue.
  int block = 32;
};

struct sssp_result {
  /// Tentative-made-final distance per vertex; source = 0, unreachable
  /// = -1. Exact (equal to sequential Dijkstra) for any delta.
  std::vector<std::int64_t> dist;
  std::int64_t reached = 0;      ///< vertices with dist >= 0
  std::int64_t relaxations = 0;  ///< successful distance decreases
  std::int64_t rounds = 0;       ///< frontier passes (bucket repeats count)
  std::int64_t buckets = 0;      ///< distinct bucket indices processed
  std::int64_t delta = 0;        ///< the width actually used
};

/// Run delta-stepping from `source`. `weights` must be adjacency-parallel
/// with positive entries (graph/weighted.hpp). Defined for every shipped
/// layout (instantiations in sssp.cpp).
template <micg::graph::CsrGraph G>
sssp_result delta_stepping_sssp(const G& g, typename G::vertex_type source,
                                std::span<const graph::weight_t> weights,
                                const sssp_options& opt);

/// Sequential binary-heap Dijkstra — the correctness reference for
/// delta-stepping, like seq_bfs for the BFS variants. Returns the dist
/// array (source = 0, unreachable = -1).
template <micg::graph::CsrGraph G>
std::vector<std::int64_t> seq_dijkstra(
    const G& g, typename G::vertex_type source,
    std::span<const graph::weight_t> weights);

}  // namespace micg::bfs
