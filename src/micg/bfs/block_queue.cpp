#include "micg/bfs/block_queue.hpp"

#include <utility>

namespace micg::bfs {

block_queue::block_queue(std::size_t capacity, int block_size,
                         int max_workers)
    : slots_(capacity, micg::graph::invalid_vertex),
      block_size_(block_size),
      handles_(std::make_unique<micg::padded<handle>[]>(
          static_cast<std::size_t>(max_workers))),
      max_workers_(max_workers) {
  MICG_CHECK(block_size >= 1, "block size must be positive");
  MICG_CHECK(max_workers >= 1, "need at least one worker");
}

void block_queue::flush_all() {
  for (int w = 0; w < max_workers_; ++w) {
    auto& h = handles_[static_cast<std::size_t>(w)].value;
    while (h.pos < h.end) {
      slots_[static_cast<std::size_t>(h.pos++)] =
          micg::graph::invalid_vertex;
    }
  }
}

std::size_t block_queue::count_valid() const {
  std::size_t valid = 0;
  for (const auto v : raw()) {
    if (v != micg::graph::invalid_vertex) ++valid;
  }
  return valid;
}

void block_queue::swap(block_queue& other) noexcept {
  slots_.swap(other.slots_);
  std::swap(block_size_, other.block_size_);
  const auto a = cursor_.load(std::memory_order_relaxed);
  cursor_.store(other.cursor_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  other.cursor_.store(a, std::memory_order_relaxed);
  handles_.swap(other.handles_);
  std::swap(max_workers_, other.max_workers_);
}

void block_queue::reset() {
  // Only the handed-out prefix needs re-sentineling; blocks are re-padded
  // by flush_all() anyway, so resetting cursors suffices.
  cursor_.store(0, std::memory_order_relaxed);
  for (int w = 0; w < max_workers_; ++w) {
    handles_[static_cast<std::size_t>(w)].value = handle{};
  }
}

}  // namespace micg::bfs
