#include "micg/bfs/block_queue.hpp"

#include <utility>

namespace micg::bfs {

template <std::signed_integral VId>
basic_block_queue<VId>::basic_block_queue(std::size_t capacity,
                                          int block_size, int max_workers)
    : slots_(capacity, micg::graph::invalid_vertex_v<VId>),
      block_size_(block_size),
      handles_(std::make_unique<micg::padded<handle>[]>(
          static_cast<std::size_t>(max_workers))),
      max_workers_(max_workers) {
  MICG_CHECK(block_size >= 1, "block size must be positive");
  MICG_CHECK(max_workers >= 1, "need at least one worker");
}

template <std::signed_integral VId>
void basic_block_queue<VId>::flush_all() {
  for (int w = 0; w < max_workers_; ++w) {
    auto& h = handles_[static_cast<std::size_t>(w)].value;
    while (h.pos < h.end) {
      slots_[static_cast<std::size_t>(h.pos++)] =
          micg::graph::invalid_vertex_v<VId>;
    }
  }
}

template <std::signed_integral VId>
std::size_t basic_block_queue<VId>::count_valid() const {
  std::size_t valid = 0;
  for (const auto v : raw()) {
    if (v != micg::graph::invalid_vertex_v<VId>) ++valid;
  }
  return valid;
}

template <std::signed_integral VId>
void basic_block_queue<VId>::swap(basic_block_queue& other) noexcept(false) {
  // Quiescence check (see header): an open block means a producer is (or
  // was) mid-level and the cursor exchange below would race with its
  // acquire_block. flush_all()/reset() close every handle (pos == end).
  for (int w = 0; w < max_workers_; ++w) {
    const auto& h = handles_[static_cast<std::size_t>(w)].value;
    MICG_CHECK(h.pos == h.end,
               "block_queue::swap with an open block (call flush_all "
               "before swapping)");
  }
  for (int w = 0; w < other.max_workers_; ++w) {
    const auto& h = other.handles_[static_cast<std::size_t>(w)].value;
    MICG_CHECK(h.pos == h.end,
               "block_queue::swap with an open block in the other queue");
  }
  slots_.swap(other.slots_);
  std::swap(block_size_, other.block_size_);
  // Each cursor is updated in a single RMW (exchange), not a separate
  // load/store pair, so even a misuse under concurrency cannot interleave
  // half an update into either atomic.
  const auto mine =
      cursor_.exchange(other.cursor_.load(std::memory_order_acquire),
                       std::memory_order_acq_rel);
  other.cursor_.store(mine, std::memory_order_release);
  handles_.swap(other.handles_);
  std::swap(max_workers_, other.max_workers_);
}

template <std::signed_integral VId>
void basic_block_queue<VId>::reset() {
  // Only the handed-out prefix needs re-sentineling; blocks are re-padded
  // by flush_all() anyway, so resetting cursors suffices.
  cursor_.store(0, std::memory_order_relaxed);
  for (int w = 0; w < max_workers_; ++w) {
    handles_[static_cast<std::size_t>(w)].value = handle{};
  }
}

template class basic_block_queue<std::int32_t>;
template class basic_block_queue<std::int64_t>;

}  // namespace micg::bfs
