#include "micg/bfs/seq.hpp"

#include "micg/support/assert.hpp"

namespace micg::bfs {

template <micg::graph::CsrGraph G>
bfs_result seq_bfs(const G& g, typename G::vertex_type source) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  MICG_CHECK(source >= 0 && source < n, "source out of range");

  bfs_result r;
  r.level.assign(static_cast<std::size_t>(n), -1);

  // The FIFO is one flat array with a read head: push_back is the enqueue,
  // advancing `head` is the dequeue (no deque overhead, and the array
  // doubles as the visit order).
  std::vector<VId> fifo;
  fifo.reserve(static_cast<std::size_t>(n));
  r.level[static_cast<std::size_t>(source)] = 0;
  fifo.push_back(source);

  std::size_t level_end = 1;  // index one past the last level-0 vertex
  r.frontier_sizes.push_back(1);
  for (std::size_t head = 0; head < fifo.size(); ++head) {
    if (head == level_end) {
      r.frontier_sizes.push_back(fifo.size() - level_end);
      level_end = fifo.size();
    }
    const VId v = fifo[head];
    const int next_level = r.level[static_cast<std::size_t>(v)] + 1;
    for (VId w : g.neighbors(v)) {
      if (r.level[static_cast<std::size_t>(w)] == -1) {
        r.level[static_cast<std::size_t>(w)] = next_level;
        fifo.push_back(w);
      }
    }
  }
  r.reached = fifo.size();
  r.num_levels = static_cast<int>(r.frontier_sizes.size());
  return r;
}

#define MICG_INSTANTIATE(G) \
  template bfs_result seq_bfs<G>(const G&, typename G::vertex_type);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::bfs
