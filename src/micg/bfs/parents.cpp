#include "micg/bfs/parents.hpp"

#include <algorithm>
#include <atomic>

#include "micg/bfs/block_queue.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/rt/exec.hpp"
#include "micg/support/assert.hpp"

namespace micg::bfs {

using micg::graph::invalid_vertex_v;

template <micg::graph::CsrGraph G>
basic_parent_bfs_result<typename G::vertex_type> parallel_bfs_parents(
    const G& g, typename G::vertex_type source,
    const parallel_bfs_options& opt) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  MICG_CHECK(source >= 0 && source < n, "source out of range");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");

  // parent doubles as the visited flag: a CAS from invalid_vertex claims
  // the vertex exactly once (so parents are always consistent even though
  // levels could tolerate the relaxed race).
  std::vector<std::atomic<VId>> parent(static_cast<std::size_t>(n));
  for (auto& p : parent) {
    p.store(invalid_vertex_v<VId>, std::memory_order_relaxed);
  }
  std::vector<int> level(static_cast<std::size_t>(n), -1);

  const std::size_t cap = static_cast<std::size_t>(n) +
                          static_cast<std::size_t>(opt.ex.threads) *
                              static_cast<std::size_t>(opt.block) +
                          64;
  basic_block_queue<VId> cur(cap, opt.block, opt.ex.threads);
  basic_block_queue<VId> next(cap, opt.block, opt.ex.threads);

  rt::exec ex = opt.ex;
  ex.kind = rt::backend::omp_dynamic;

  parent[static_cast<std::size_t>(source)].store(source,
                                                 std::memory_order_relaxed);
  level[static_cast<std::size_t>(source)] = 0;
  cur.push(0, source);
  cur.flush_all();

  int depth = 1;
  while (cur.count_valid() > 0) {
    next.reset();
    const auto entries = cur.raw();
    rt::for_range(
        ex, static_cast<std::int64_t>(entries.size()),
        [&](std::int64_t b, std::int64_t e, int worker) {
          for (std::int64_t i = b; i < e; ++i) {
            const VId v = entries[static_cast<std::size_t>(i)];
            if (v == invalid_vertex_v<VId>) continue;
            for (VId w : g.neighbors(v)) {
              VId expected = invalid_vertex_v<VId>;
              if (parent[static_cast<std::size_t>(w)]
                      .compare_exchange_strong(expected, v,
                                               std::memory_order_relaxed,
                                               std::memory_order_relaxed)) {
                level[static_cast<std::size_t>(w)] = depth;
                next.push(worker, w);
              }
            }
          }
        });
    next.flush_all();
    cur.swap(next);
    ++depth;
  }

  basic_parent_bfs_result<VId> r;
  r.parent.resize(static_cast<std::size_t>(n));
  r.level = std::move(level);
  for (VId v = 0; v < n; ++v) {
    r.parent[static_cast<std::size_t>(v)] =
        parent[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    if (r.parent[static_cast<std::size_t>(v)] != invalid_vertex_v<VId>) {
      ++r.reached;
    }
  }
  return r;
}

template <micg::graph::CsrGraph G>
bool validate_parent_tree(const G& g, typename G::vertex_type source,
                          std::span<const typename G::vertex_type> parent) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  if (static_cast<VId>(parent.size()) != n) return false;
  if (source < 0 || source >= n) return false;
  if (parent[static_cast<std::size_t>(source)] != source) return false;

  const auto ref = seq_bfs(g, source);
  for (VId v = 0; v < n; ++v) {
    const VId p = parent[static_cast<std::size_t>(v)];
    const int true_level = ref.level[static_cast<std::size_t>(v)];
    if (p == invalid_vertex_v<VId>) {
      // Unreached must be exactly the vertices outside the component.
      if (true_level != -1) return false;
      continue;
    }
    if (true_level == -1) return false;
    if (v == source) continue;
    // Tree edge exists in the graph...
    auto nbrs = g.neighbors(v);
    if (!std::binary_search(nbrs.begin(), nbrs.end(), p)) return false;
    // ...and the parent is exactly one level closer to the source.
    if (ref.level[static_cast<std::size_t>(p)] != true_level - 1) {
      return false;
    }
  }
  return true;
}

#define MICG_INSTANTIATE(G)                                          \
  template basic_parent_bfs_result<typename G::vertex_type>          \
  parallel_bfs_parents<G>(const G&, typename G::vertex_type,         \
                          const parallel_bfs_options&);              \
  template bool validate_parent_tree<G>(                             \
      const G&, typename G::vertex_type,                             \
      std::span<const typename G::vertex_type>);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::bfs
