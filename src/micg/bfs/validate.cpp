#include "micg/bfs/validate.hpp"

#include <cstdlib>

#include "micg/bfs/seq.hpp"

namespace micg::bfs {

template <micg::graph::CsrGraph G>
bool is_valid_bfs_levels(const G& g, typename G::vertex_type source,
                         std::span<const int> level) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  if (static_cast<VId>(level.size()) != n) return false;
  if (source < 0 || source >= n) return false;
  if (level[static_cast<std::size_t>(source)] != 0) return false;

  for (VId v = 0; v < n; ++v) {
    const int lv = level[static_cast<std::size_t>(v)];
    if (lv < -1) return false;
    bool has_parent = lv <= 0;  // source and unreached need no parent
    for (VId w : g.neighbors(v)) {
      const int lw = level[static_cast<std::size_t>(w)];
      // A labeled vertex cannot touch an unlabeled one, and adjacent
      // labels differ by at most 1 (triangle property of BFS).
      if ((lv == -1) != (lw == -1)) return false;
      if (lv != -1 && std::abs(lv - lw) > 1) return false;
      if (lv > 0 && lw == lv - 1) has_parent = true;
    }
    if (!has_parent) return false;
  }

  // Level-by-level agreement with the sequential reference (levels are
  // unique, so this is both sound and complete).
  const auto ref = seq_bfs(g, source);
  for (VId v = 0; v < n; ++v) {
    if (ref.level[static_cast<std::size_t>(v)] !=
        level[static_cast<std::size_t>(v)]) {
      return false;
    }
  }
  return true;
}

#define MICG_INSTANTIATE(G)                \
  template bool is_valid_bfs_levels<G>(    \
      const G&, typename G::vertex_type, std::span<const int>);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::bfs
