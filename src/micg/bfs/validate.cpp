#include "micg/bfs/validate.hpp"

#include <cstdlib>

#include "micg/bfs/seq.hpp"

namespace micg::bfs {

using micg::graph::csr_graph;
using micg::graph::vertex_t;

bool is_valid_bfs_levels(const csr_graph& g, vertex_t source,
                         std::span<const int> level) {
  const vertex_t n = g.num_vertices();
  if (static_cast<vertex_t>(level.size()) != n) return false;
  if (source < 0 || source >= n) return false;
  if (level[static_cast<std::size_t>(source)] != 0) return false;

  for (vertex_t v = 0; v < n; ++v) {
    const int lv = level[static_cast<std::size_t>(v)];
    if (lv < -1) return false;
    bool has_parent = lv <= 0;  // source and unreached need no parent
    for (vertex_t w : g.neighbors(v)) {
      const int lw = level[static_cast<std::size_t>(w)];
      // A labeled vertex cannot touch an unlabeled one, and adjacent
      // labels differ by at most 1 (triangle property of BFS).
      if ((lv == -1) != (lw == -1)) return false;
      if (lv != -1 && std::abs(lv - lw) > 1) return false;
      if (lv > 0 && lw == lv - 1) has_parent = true;
    }
    if (!has_parent) return false;
  }

  // Level-by-level agreement with the sequential reference (levels are
  // unique, so this is both sound and complete).
  const auto ref = seq_bfs(g, source);
  for (vertex_t v = 0; v < n; ++v) {
    if (ref.level[static_cast<std::size_t>(v)] !=
        level[static_cast<std::size_t>(v)]) {
      return false;
    }
  }
  return true;
}

}  // namespace micg::bfs
