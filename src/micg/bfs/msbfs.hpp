// Batched multi-source BFS (MS-BFS, after Then et al., VLDB 2015).
//
// The paper's layered BFS (Algorithm 7) and its analytical model treat one
// traversal at a time, but a query-serving deployment runs many sources
// over the same graph. Batching up to 64 sources into one traversal packs
// each source into a bit lane of a per-vertex `uint64_t` word
// (seen/frontier/next masks), so one shared edge sweep per level advances
// all lanes at once: a vertex enters the shared frontier once per
// *distinct* discovery depth among its lanes (usually 1-3 times) instead
// of once per source, turning O(sources x edges) memory traffic into a few
// edge sweeps total.
//
// The sweep is level-synchronous like Algorithm 7: expand pushes frontier
// masks to neighbors with one relaxed fetch_or per edge (the first setter
// enqueues the vertex, so the next list is duplicate-free), and a settle
// pass claims the new bits against `seen` and records per-lane depths.
// BFS levels are unique, so every lane's levels are bit-identical to
// bfs::seq_bfs regardless of scheduling (the property suite sweeps this).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/rt/edge_partition.hpp"
#include "micg/rt/exec.hpp"

namespace micg::bfs {

/// Lanes per batch word (sources packed into one uint64_t).
inline constexpr int msbfs_max_lanes = 64;

struct msbfs_options {
  /// Threads, chunk, pool and metrics sink (the backend kind is fixed to
  /// the OpenMP-dynamic substrate, like direction-optimizing BFS).
  rt::exec ex;
  /// How the frontier's edge work is split across workers. Edge balancing
  /// binary-searches a degree prefix of the frontier so an RMAT hub in the
  /// frontier cannot serialize a level.
  rt::partition_mode partition = rt::partition_mode::edge;
};

/// Result of one batch of up to 64 traversals over a graph of n vertices.
struct msbfs_result {
  /// Number of lanes (== sources.size() of the call).
  int lanes = 0;
  /// Vertices of the graph (the stride of `level`).
  std::int64_t n = 0;
  /// Per-lane levels, lane-major: level[lane * n + v] is lane's BFS level
  /// of v (source = 0, unreachable = -1) — bit-identical to seq_bfs.
  std::vector<int> level;
  /// Per-lane number of levels (max level + 1).
  std::vector<int> num_levels;
  /// Per-lane vertices reached.
  std::vector<std::size_t> reached;
  /// Union frontier per depth: distinct vertices discovered by *some* lane
  /// at that depth (frontier_sizes[0] counts the distinct sources). This
  /// is the x_l the batched cost model charges (model/bfs_model.hpp).
  std::vector<std::size_t> frontier_sizes;

  /// Lane's levels as a span (valid while the result lives).
  [[nodiscard]] std::span<const int> lane_levels(int lane) const {
    return {level.data() + static_cast<std::size_t>(lane) *
                               static_cast<std::size_t>(n),
            static_cast<std::size_t>(n)};
  }
};

/// Run one batch of up to 64 sources (duplicates allowed; each lane is an
/// independent traversal). Sequential when ex.threads == 1 — that path
/// never touches the thread pool, so batches can themselves be distributed
/// across pool workers (see msbfs_pool). Defined for every shipped layout.
template <micg::graph::CsrGraph G>
msbfs_result msbfs(const G& g,
                   std::span<const typename G::vertex_type> sources,
                   const msbfs_options& opt);

/// One batch's slice of an msbfs_pool run, handed to the batch callback.
struct msbfs_batch {
  int index = 0;                 ///< batch number, 0-based
  std::int64_t first_source = 0; ///< offset of the batch in the source list
  int lanes = 0;                 ///< sources in this batch (<= 64)
  int worker = 0;                ///< pool worker running the callback
};

/// Batch scheduler: tiles an arbitrary source list into lane batches and
/// runs them on the thread pool. When there are at least as many batches
/// as threads, whole batches are distributed across workers (each batch
/// traversed sequentially — the work units are large and independent, so
/// this is the high-throughput regime the concurrent-query workload
/// wants); otherwise batches run one at a time, each internally parallel.
class msbfs_pool {
 public:
  struct options {
    rt::exec ex;
    /// Lanes per batch, 1..64. Narrower batches trade edge-sweep sharing
    /// for lower per-query latency.
    int lanes = msbfs_max_lanes;
    rt::partition_mode partition = rt::partition_mode::edge;
  };

  explicit msbfs_pool(options opt);

  /// Traverse every source, invoking `fn(batch, result)` once per batch.
  /// The callback may run concurrently from different pool workers (keyed
  /// by batch.worker < ex.threads); results are not retained. Defined for
  /// every shipped layout.
  template <micg::graph::CsrGraph G>
  void for_each_batch(
      const G& g, std::span<const typename G::vertex_type> sources,
      const std::function<void(const msbfs_batch&, const msbfs_result&)>& fn)
      const;

  /// Convenience: per-source level vectors, in source order (each
  /// bit-identical to seq_bfs(g, source).level).
  template <micg::graph::CsrGraph G>
  std::vector<std::vector<int>> run_levels(
      const G& g, std::span<const typename G::vertex_type> sources) const;

  [[nodiscard]] const options& opts() const { return opt_; }

 private:
  options opt_;
};

}  // namespace micg::bfs
