// BFS result validation: BFS levels are unique, so any correct variant
// must produce the exact level array of the sequential reference.
#pragma once

#include <span>

#include "micg/graph/csr.hpp"

namespace micg::bfs {

/// True iff `level` is a correct BFS level assignment from `source`:
/// level[source] == 0; every edge differs by at most one level; every
/// vertex with level k > 0 has a neighbor at level k-1; vertices in the
/// source's component are all labeled and others are -1.
template <micg::graph::CsrGraph G>
bool is_valid_bfs_levels(const G& g, typename G::vertex_type source,
                         std::span<const int> level);

}  // namespace micg::bfs
