// Thread-local-storage frontier (the SNAP approach, §IV-C of the paper):
// each thread accumulates next-level vertices in a private queue; at the
// end of the level the local queues are concatenated into one global
// queue. A vertex is claimed with an atomic compare-and-swap on its level
// before insertion ("locks a vertex before adding it to local queue to
// guarantee that only one instance of that vertex will be added"), with
// the paper's improvement of checking the visited state first.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/support/cacheline.hpp"

namespace micg::bfs {

template <std::signed_integral VId>
class basic_tls_frontier {
 public:
  explicit basic_tls_frontier(int max_workers);

  /// Append to the calling worker's private queue (no synchronization).
  void push(int worker, VId v) {
    locals_[static_cast<std::size_t>(worker)].value.push_back(v);
  }

  /// Concatenate all local queues into `out` (cleared first) and clear the
  /// locals. Sequential merge, as in SNAP — its cost is part of what the
  /// paper measures for OpenMP-TLS.
  void merge_into(std::vector<VId>& out);

  /// Total queued entries across workers.
  [[nodiscard]] std::size_t total_size() const;

 private:
  std::unique_ptr<micg::padded<std::vector<VId>>[]> locals_;
  int max_workers_;
};

using tls_frontier = basic_tls_frontier<micg::graph::vertex_t>;

}  // namespace micg::bfs
