#include "micg/bfs/centrality.hpp"

#include <algorithm>
#include <vector>

#include "micg/rt/tls.hpp"
#include "micg/support/assert.hpp"

namespace micg::bfs {

namespace {

/// Private per-worker traversal state, reused across sources.
template <class VId>
struct brandes_state {
  std::vector<int> dist;
  std::vector<double> sigma;  // shortest-path counts
  std::vector<double> delta;  // dependency accumulators
  std::vector<VId> order;     // BFS visit order (stack for phase 2)
  std::vector<double> score;  // per-worker centrality accumulator

  explicit brandes_state(VId n)
      : dist(static_cast<std::size_t>(n)),
        sigma(static_cast<std::size_t>(n)),
        delta(static_cast<std::size_t>(n)),
        score(static_cast<std::size_t>(n), 0.0) {
    order.reserve(static_cast<std::size_t>(n));
  }
};

/// One source's contribution (Brandes 2001, Algorithm 1).
template <micg::graph::CsrGraph G>
void accumulate_source(const G& g, typename G::vertex_type s,
                       brandes_state<typename G::vertex_type>& st) {
  using VId = typename G::vertex_type;
  std::fill(st.dist.begin(), st.dist.end(), -1);
  std::fill(st.sigma.begin(), st.sigma.end(), 0.0);
  std::fill(st.delta.begin(), st.delta.end(), 0.0);
  st.order.clear();

  st.dist[static_cast<std::size_t>(s)] = 0;
  st.sigma[static_cast<std::size_t>(s)] = 1.0;
  st.order.push_back(s);
  for (std::size_t head = 0; head < st.order.size(); ++head) {
    const VId v = st.order[head];
    for (VId w : g.neighbors(v)) {
      if (st.dist[static_cast<std::size_t>(w)] < 0) {
        st.dist[static_cast<std::size_t>(w)] =
            st.dist[static_cast<std::size_t>(v)] + 1;
        st.order.push_back(w);
      }
      if (st.dist[static_cast<std::size_t>(w)] ==
          st.dist[static_cast<std::size_t>(v)] + 1) {
        st.sigma[static_cast<std::size_t>(w)] +=
            st.sigma[static_cast<std::size_t>(v)];
      }
    }
  }
  // Dependency accumulation in reverse BFS order.
  for (std::size_t i = st.order.size(); i-- > 1;) {
    const VId w = st.order[i];
    for (VId v : g.neighbors(w)) {
      if (st.dist[static_cast<std::size_t>(v)] ==
          st.dist[static_cast<std::size_t>(w)] - 1) {
        st.delta[static_cast<std::size_t>(v)] +=
            st.sigma[static_cast<std::size_t>(v)] /
            st.sigma[static_cast<std::size_t>(w)] *
            (1.0 + st.delta[static_cast<std::size_t>(w)]);
      }
    }
    if (w != s) {
      st.score[static_cast<std::size_t>(w)] +=
          st.delta[static_cast<std::size_t>(w)];
    }
  }
}

template <class VId>
std::vector<VId> pick_sources(VId n, std::int64_t samples) {
  std::vector<VId> sources;
  if (samples <= 0 || samples >= static_cast<std::int64_t>(n)) {
    sources.resize(static_cast<std::size_t>(n));
    for (VId v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
  } else {
    sources.reserve(static_cast<std::size_t>(samples));
    for (std::int64_t i = 0; i < samples; ++i) {
      sources.push_back(static_cast<VId>(
          i * static_cast<std::int64_t>(n) / samples));
    }
  }
  return sources;
}

}  // namespace

template <micg::graph::CsrGraph G>
std::vector<double> betweenness_centrality(const G& g,
                                           const centrality_options& opt) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  const auto sources = pick_sources(n, opt.sample_sources);

  rt::enumerable_thread_specific<brandes_state<VId>> states(
      opt.ex.threads, [n] { return brandes_state<VId>(n); });

  rt::for_range(opt.ex, static_cast<std::int64_t>(sources.size()),
                [&](std::int64_t b, std::int64_t e, int) {
                  brandes_state<VId>& st = states.local();
                  for (std::int64_t i = b; i < e; ++i) {
                    accumulate_source(
                        g, sources[static_cast<std::size_t>(i)], st);
                  }
                });

  std::vector<double> score(static_cast<std::size_t>(n), 0.0);
  states.for_each([&](brandes_state<VId>& st) {
    for (std::size_t v = 0; v < score.size(); ++v) {
      score[v] += st.score[v];
    }
  });
  // Undirected: each pair counted twice (once per endpoint as source).
  const double pair_scale = 0.5;
  const double sample_scale =
      sources.size() < static_cast<std::size_t>(n)
          ? static_cast<double>(n) / static_cast<double>(sources.size())
          : 1.0;
  for (double& x : score) x *= pair_scale * sample_scale;
  return score;
}

template <micg::graph::CsrGraph G>
std::vector<double> betweenness_centrality_seq(const G& g,
                                               std::int64_t sample_sources) {
  centrality_options opt;
  opt.ex.threads = 1;
  opt.ex.kind = rt::backend::omp_static;
  opt.sample_sources = sample_sources;
  return betweenness_centrality(g, opt);
}

#define MICG_INSTANTIATE(G)                                  \
  template std::vector<double> betweenness_centrality<G>(    \
      const G&, const centrality_options&);                  \
  template std::vector<double> betweenness_centrality_seq<G>(\
      const G&, std::int64_t);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::bfs
