#include "micg/bfs/centrality.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "micg/bfs/msbfs.hpp"
#include "micg/obs/obs.hpp"
#include "micg/support/assert.hpp"

namespace micg::bfs {

namespace {

/// Private per-worker traversal state, reused across sources.
template <class VId>
struct brandes_state {
  std::vector<int> dist;      // repeated path's own BFS distances
  std::vector<double> sigma;  // shortest-path counts
  std::vector<double> delta;  // dependency accumulators
  std::vector<VId> order;     // canonical (dist, id) visit order
  std::vector<std::size_t> bucket;  // counting-sort cursors
  std::vector<double> score;  // per-worker centrality accumulator

  explicit brandes_state(VId n)
      : dist(static_cast<std::size_t>(n)),
        sigma(static_cast<std::size_t>(n)),
        delta(static_cast<std::size_t>(n)),
        score(static_cast<std::size_t>(n), 0.0) {
    order.reserve(static_cast<std::size_t>(n));
  }
};

/// One source's contribution (Brandes 2001, Algorithm 1), driven by a
/// precomputed distance array — either the repeated path's own BFS or one
/// msbfs lane. Both passes walk the canonical (dist, id) order (any
/// topological order of the shortest-path DAG is valid, and a shared
/// canonical one makes the two traversal modes produce identical sums).
template <micg::graph::CsrGraph G>
void accumulate_from_dist(const G& g, typename G::vertex_type s,
                          const int* dist,
                          brandes_state<typename G::vertex_type>& st) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();

  // Counting sort by distance, stable in vertex id.
  int num_levels = 0;
  std::size_t reached = 0;
  for (VId v = 0; v < n; ++v) {
    const int d = dist[static_cast<std::size_t>(v)];
    if (d >= 0) {
      ++reached;
      if (d + 1 > num_levels) num_levels = d + 1;
    }
  }
  st.bucket.assign(static_cast<std::size_t>(num_levels) + 1, 0);
  for (VId v = 0; v < n; ++v) {
    const int d = dist[static_cast<std::size_t>(v)];
    if (d >= 0) ++st.bucket[static_cast<std::size_t>(d) + 1];
  }
  for (std::size_t l = 1; l <= static_cast<std::size_t>(num_levels); ++l) {
    st.bucket[l] += st.bucket[l - 1];
  }
  st.order.resize(reached);
  for (VId v = 0; v < n; ++v) {
    const int d = dist[static_cast<std::size_t>(v)];
    if (d >= 0) st.order[st.bucket[static_cast<std::size_t>(d)]++] = v;
  }

  std::fill(st.sigma.begin(), st.sigma.end(), 0.0);
  std::fill(st.delta.begin(), st.delta.end(), 0.0);
  st.sigma[static_cast<std::size_t>(s)] = 1.0;
  for (const VId v : st.order) {
    const int dv = dist[static_cast<std::size_t>(v)];
    for (VId w : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(w)] == dv + 1) {
        st.sigma[static_cast<std::size_t>(w)] +=
            st.sigma[static_cast<std::size_t>(v)];
      }
    }
  }
  // Dependency accumulation in reverse canonical order.
  for (std::size_t i = st.order.size(); i-- > 1;) {
    const VId w = st.order[i];
    const int dw = dist[static_cast<std::size_t>(w)];
    for (VId v : g.neighbors(w)) {
      if (dist[static_cast<std::size_t>(v)] == dw - 1) {
        st.delta[static_cast<std::size_t>(v)] +=
            st.sigma[static_cast<std::size_t>(v)] /
            st.sigma[static_cast<std::size_t>(w)] *
            (1.0 + st.delta[static_cast<std::size_t>(w)]);
      }
    }
    if (w != s) {
      st.score[static_cast<std::size_t>(w)] +=
          st.delta[static_cast<std::size_t>(w)];
    }
  }
}

/// Textbook queue BFS into st.dist (the repeated path's traversal).
template <micg::graph::CsrGraph G>
void bfs_fill_dist(const G& g, typename G::vertex_type s,
                   brandes_state<typename G::vertex_type>& st) {
  using VId = typename G::vertex_type;
  std::fill(st.dist.begin(), st.dist.end(), -1);
  st.order.clear();
  st.dist[static_cast<std::size_t>(s)] = 0;
  st.order.push_back(s);
  for (std::size_t head = 0; head < st.order.size(); ++head) {
    const VId v = st.order[head];
    for (VId w : g.neighbors(v)) {
      if (st.dist[static_cast<std::size_t>(w)] < 0) {
        st.dist[static_cast<std::size_t>(w)] =
            st.dist[static_cast<std::size_t>(v)] + 1;
        st.order.push_back(w);
      }
    }
  }
}

template <class VId>
std::vector<VId> pick_sources(VId n, std::int64_t samples) {
  std::vector<VId> sources;
  if (samples <= 0 || samples >= static_cast<std::int64_t>(n)) {
    sources.resize(static_cast<std::size_t>(n));
    for (VId v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
  } else {
    sources.reserve(static_cast<std::size_t>(samples));
    for (std::int64_t i = 0; i < samples; ++i) {
      sources.push_back(static_cast<VId>(
          i * static_cast<std::int64_t>(n) / samples));
    }
  }
  return sources;
}

/// Lazily-built per-worker states, indexed by the dense worker id (the
/// batched path's callbacks may run outside a worker context, so the id is
/// threaded explicitly instead of via this_worker_id()).
template <class VId>
class worker_states {
 public:
  worker_states(int workers, VId n)
      : slots_(static_cast<std::size_t>(workers)), n_(n) {}

  brandes_state<VId>& get(int worker) {
    MICG_CHECK(worker >= 0 &&
                   worker < static_cast<int>(slots_.size()),
               "worker id out of range");
    auto& slot = slots_[static_cast<std::size_t>(worker)];
    if (slot == nullptr) {
      slot = std::make_unique<brandes_state<VId>>(n_);
    }
    return *slot;
  }

  template <typename F>
  void for_each(F&& f) {
    for (auto& slot : slots_) {
      if (slot != nullptr) f(*slot);
    }
  }

 private:
  std::vector<std::unique_ptr<brandes_state<VId>>> slots_;
  VId n_;
};

}  // namespace

template <micg::graph::CsrGraph G>
std::vector<double> betweenness_centrality(const G& g,
                                           const centrality_options& opt) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  MICG_CHECK(opt.batch_lanes >= 1 && opt.batch_lanes <= msbfs_max_lanes,
             "batch_lanes must be in [1, 64]");
  const auto sources = pick_sources(n, opt.sample_sources);

  worker_states<VId> states(opt.ex.threads, n);

  if (opt.batched) {
    msbfs_pool::options po;
    po.ex = opt.ex;
    po.lanes = opt.batch_lanes;
    msbfs_pool pool(po);
    pool.for_each_batch(
        g, std::span<const VId>(sources),
        [&](const msbfs_batch& batch, const msbfs_result& res) {
          brandes_state<VId>& st = states.get(batch.worker);
          for (int lane = 0; lane < batch.lanes; ++lane) {
            const VId s = sources[static_cast<std::size_t>(
                batch.first_source + lane)];
            accumulate_from_dist(g, s, res.lane_levels(lane).data(), st);
          }
        });
  } else {
    rt::for_range(opt.ex, static_cast<std::int64_t>(sources.size()),
                  [&](std::int64_t b, std::int64_t e, int worker) {
                    brandes_state<VId>& st = states.get(worker);
                    for (std::int64_t i = b; i < e; ++i) {
                      const VId s = sources[static_cast<std::size_t>(i)];
                      bfs_fill_dist(g, s, st);
                      accumulate_from_dist(g, s, st.dist.data(), st);
                    }
                  });
  }

  std::vector<double> score(static_cast<std::size_t>(n), 0.0);
  states.for_each([&](brandes_state<VId>& st) {
    for (std::size_t v = 0; v < score.size(); ++v) {
      score[v] += st.score[v];
    }
  });
  // Undirected: each pair counted twice (once per endpoint as source).
  const double pair_scale = 0.5;
  const double sample_scale =
      sources.size() < static_cast<std::size_t>(n)
          ? static_cast<double>(n) / static_cast<double>(sources.size())
          : 1.0;
  for (double& x : score) x *= pair_scale * sample_scale;

  if (obs::recorder* rec = opt.ex.sink(); rec != nullptr) {
    rec->set_meta("kernel", "betweenness_centrality");
    rec->set_meta("bc.mode", opt.batched ? "batched" : "repeated");
    rec->set_value("bc.sources", static_cast<double>(sources.size()));
    if (opt.batched) {
      rec->set_value("bc.batch_lanes", static_cast<double>(opt.batch_lanes));
    }
  }
  return score;
}

template <micg::graph::CsrGraph G>
std::vector<double> betweenness_centrality_seq(const G& g,
                                               std::int64_t sample_sources) {
  centrality_options opt;
  opt.ex.threads = 1;
  opt.ex.kind = rt::backend::omp_static;
  opt.sample_sources = sample_sources;
  opt.batched = false;
  return betweenness_centrality(g, opt);
}

#define MICG_INSTANTIATE(G)                                  \
  template std::vector<double> betweenness_centrality<G>(    \
      const G&, const centrality_options&);                  \
  template std::vector<double> betweenness_centrality_seq<G>(\
      const G&, std::int64_t);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::bfs
