#include "micg/bfs/landmark.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "micg/graph/stats.hpp"
#include "micg/obs/obs.hpp"
#include "micg/support/assert.hpp"

namespace micg::bfs {

landmark_estimate landmark_index::estimate(std::int64_t u,
                                           std::int64_t v) const {
  MICG_CHECK(u >= 0 && u < n_, "landmark endpoint out of range");
  MICG_CHECK(v >= 0 && v < n_, "landmark endpoint out of range");
  landmark_estimate est;
  if (u == v) {
    est.upper = 0;
    est.lower = 0;
    est.exact = true;
    return est;
  }
  const int k = count();
  for (int p = 0; p < k; ++p) {
    const int du = pivot_level(p, u);
    const int dv = pivot_level(p, v);
    if ((du < 0) != (dv < 0)) {
      // One endpoint reachable from the pivot, the other not: the
      // endpoints sit in different components. Definitive, so no other
      // pivot can reach both — stop here.
      est.upper = -1;
      est.lower = 0;
      est.disjoint = true;
      est.exact = true;
      return est;
    }
    if (du < 0) continue;  // pivot reaches neither endpoint
    const auto sum = static_cast<std::int64_t>(du) + dv;
    const auto diff = static_cast<std::int64_t>(du > dv ? du - dv : dv - du);
    if (est.upper < 0 || sum < est.upper) est.upper = sum;
    if (diff > est.lower) est.lower = diff;
  }
  // A pivot on the shortest path (e.g. a pivot that *is* an endpoint)
  // closes the bounds; then the upper bound is the distance itself.
  est.exact = est.upper >= 0 && est.upper == est.lower;
  return est;
}

template <micg::graph::CsrGraph G>
landmark_index build_landmarks(const G& g, const landmark_options& opt) {
  using VId = typename G::vertex_type;
  MICG_CHECK(opt.count >= 1 && opt.count <= landmark_max_count,
             "landmark count must be in [1, 64]");
  const VId n = g.num_vertices();

  landmark_index idx;
  idx.n_ = static_cast<std::int64_t>(n);
  if (n == 0) return idx;

  // Top-k-by-degree pivots, ties to the lower id: hub landmarks give the
  // tightest d(L,u)+d(L,v) sums on skewed-degree graphs, and the
  // deterministic rule keeps answers reproducible across rebuilds. The
  // selection itself is the shared graph/stats helper, so the rule here
  // and the tuner's hub table cannot drift apart.
  const std::vector<VId> pivots = graph::top_degree_vertices(g, opt.count);

  msbfs_options mo;
  mo.ex = opt.ex;
  msbfs_result res = msbfs(g, std::span<const VId>(pivots), mo);

  idx.pivots_.reserve(pivots.size());
  for (VId p : pivots) idx.pivots_.push_back(static_cast<std::int64_t>(p));
  // The lane-major level matrix of the batch IS the pivot-major distance
  // table: lane p row == seq_bfs(g, pivots[p]).level.
  idx.dist_ = std::move(res.level);

  if (obs::recorder* rec = opt.ex.sink(); rec != nullptr) {
    rec->get_counter("landmark.builds").inc(0);
    rec->set_value("landmark.pivots", static_cast<double>(idx.count()));
  }
  return idx;
}

landmark_index build_landmarks(const graph::any_csr& g,
                               const landmark_options& opt) {
  return g.visit([&](const auto& cg) { return build_landmarks(cg, opt); });
}

#define MICG_INSTANTIATE(G) \
  template landmark_index build_landmarks<G>(const G&, \
                                             const landmark_options&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::bfs
