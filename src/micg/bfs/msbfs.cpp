#include "micg/bfs/msbfs.hpp"

#include <atomic>
#include <bit>
#include <cstdint>
#include <utility>

#include "micg/obs/obs.hpp"
#include "micg/support/assert.hpp"

namespace micg::bfs {

namespace {

/// Expand/settle bodies run either inline (ex.threads == 1 — no pool
/// calls, so msbfs_pool can nest whole batches inside a pool region) or
/// through the configured backend.
template <typename Body>
void run_phase(const rt::exec& ex, std::int64_t n, const std::int64_t* fxadj,
               rt::partition_mode mode, const Body& body) {
  if (ex.threads <= 1) {
    if (n > 0) body(0, n, 0);
    return;
  }
  if (fxadj != nullptr) {
    rt::for_range_graph(ex, n, fxadj, mode, body);
  } else {
    rt::for_range(ex, n, body);
  }
}

}  // namespace

template <micg::graph::CsrGraph G>
msbfs_result msbfs(const G& g,
                   std::span<const typename G::vertex_type> sources,
                   const msbfs_options& opt) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  // |V| widened to int64 once: every size/stride computation below works
  // at full width so a narrow-layout VId can never overflow mid-product.
  const auto nvert = static_cast<std::int64_t>(n);
  const int lanes = static_cast<int>(sources.size());
  MICG_CHECK(lanes <= msbfs_max_lanes,
             "msbfs batch exceeds 64 lanes; tile through msbfs_pool");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");

  msbfs_result r;
  r.lanes = lanes;
  r.n = nvert;
  r.num_levels.assign(static_cast<std::size_t>(lanes), 0);
  r.reached.assign(static_cast<std::size_t>(lanes), 0);
  if (lanes == 0 || n == 0) return r;
  for (VId s : sources) {
    MICG_CHECK(s >= 0 && s < n, "msbfs source out of range");
  }

  rt::exec ex = opt.ex;
  ex.kind = rt::backend::omp_dynamic;
  const bool parallel = ex.threads > 1;
  const int nworkers = parallel ? ex.threads : 1;

  r.level.assign(static_cast<std::size_t>(lanes) *
                     static_cast<std::size_t>(nvert),
                 -1);
  std::vector<std::uint64_t> seen(static_cast<std::size_t>(nvert), 0);
  std::vector<std::uint64_t> cur(static_cast<std::size_t>(nvert), 0);
  std::vector<std::atomic<std::uint64_t>> nxt(static_cast<std::size_t>(nvert));
  for (auto& w : nxt) w.store(0, std::memory_order_relaxed);

  // Shared frontier: the distinct vertices any lane discovered last level.
  std::vector<VId> frontier;
  frontier.reserve(static_cast<std::size_t>(nvert));
  for (int lane = 0; lane < lanes; ++lane) {
    const auto s = static_cast<std::size_t>(sources[static_cast<std::size_t>(
        lane)]);
    if (cur[s] == 0) frontier.push_back(static_cast<VId>(s));
    const std::uint64_t bit = 1ull << lane;
    cur[s] |= bit;
    seen[s] |= bit;
    r.level[static_cast<std::size_t>(lane) * static_cast<std::size_t>(nvert) +
            s] = 0;
  }
  r.frontier_sizes.push_back(frontier.size());

  // Per-worker discovery lists (merged between phases) and the edge-count
  // prefix of the frontier the edge-balanced split binary-searches.
  std::vector<std::vector<VId>> local_next(
      static_cast<std::size_t>(nworkers));
  std::vector<std::int64_t> fxadj;

  int depth = 1;
  while (!frontier.empty()) {
    const auto fsize = static_cast<std::int64_t>(frontier.size());
    const std::int64_t* fx = nullptr;
    if (parallel && opt.partition == rt::partition_mode::edge) {
      fxadj.resize(static_cast<std::size_t>(fsize) + 1);
      fxadj[0] = 0;
      for (std::int64_t i = 0; i < fsize; ++i) {
        fxadj[static_cast<std::size_t>(i) + 1] =
            fxadj[static_cast<std::size_t>(i)] +
            static_cast<std::int64_t>(
                g.degree(frontier[static_cast<std::size_t>(i)]));
      }
      fx = fxadj.data();
    }

    // Expand: push each frontier vertex's lane mask to its neighbors. One
    // relaxed fetch_or per edge whose mask still carries unseen lanes; the
    // worker whose fetch_or found the word empty owns the enqueue, so the
    // merged next list is duplicate-free. `seen` is read-only here (it
    // advances in settle), which keeps the pre-check race-free.
    run_phase(ex, fsize, fx, opt.partition,
              [&](std::int64_t b, std::int64_t e, int worker) {
                auto& out = local_next[static_cast<std::size_t>(worker)];
                for (std::int64_t i = b; i < e; ++i) {
                  const VId v = frontier[static_cast<std::size_t>(i)];
                  const std::uint64_t m = cur[static_cast<std::size_t>(v)];
                  cur[static_cast<std::size_t>(v)] = 0;  // consumed
                  for (VId u : g.neighbors(v)) {
                    const std::uint64_t t =
                        m & ~seen[static_cast<std::size_t>(u)];
                    if (t == 0) continue;
                    const std::uint64_t old =
                        nxt[static_cast<std::size_t>(u)].fetch_or(
                            t, std::memory_order_relaxed);
                    if (old == 0) out.push_back(u);
                  }
                }
              });

    frontier.clear();
    for (auto& out : local_next) {
      frontier.insert(frontier.end(), out.begin(), out.end());
      out.clear();
    }
    if (frontier.empty()) break;
    r.frontier_sizes.push_back(frontier.size());

    // Settle: claim the accumulated bits against `seen` and record lane
    // depths. Every vertex appears once in the merged list, so the writes
    // need no atomics.
    run_phase(ex, static_cast<std::int64_t>(frontier.size()), nullptr,
              opt.partition,
              [&](std::int64_t b, std::int64_t e, int) {
                for (std::int64_t i = b; i < e; ++i) {
                  const VId u = frontier[static_cast<std::size_t>(i)];
                  std::uint64_t t = nxt[static_cast<std::size_t>(u)].load(
                      std::memory_order_relaxed);
                  nxt[static_cast<std::size_t>(u)].store(
                      0, std::memory_order_relaxed);
                  seen[static_cast<std::size_t>(u)] |= t;
                  cur[static_cast<std::size_t>(u)] = t;
                  while (t != 0) {
                    const int lane = std::countr_zero(t);
                    t &= t - 1;
                    r.level[static_cast<std::size_t>(lane) *
                                static_cast<std::size_t>(nvert) +
                            static_cast<std::size_t>(u)] = depth;
                  }
                }
              });
    ++depth;
  }

  // Per-lane shape statistics from the level matrix.
  run_phase(ex, lanes, nullptr, opt.partition,
            [&](std::int64_t b, std::int64_t e, int) {
              for (std::int64_t lane = b; lane < e; ++lane) {
                const int* lv = r.level.data() +
                                static_cast<std::size_t>(lane) *
                                    static_cast<std::size_t>(nvert);
                int max_level = -1;
                std::size_t reached = 0;
                for (std::int64_t v = 0; v < nvert; ++v) {
                  if (lv[v] >= 0) {
                    ++reached;
                    if (lv[v] > max_level) max_level = lv[v];
                  }
                }
                r.num_levels[static_cast<std::size_t>(lane)] = max_level + 1;
                r.reached[static_cast<std::size_t>(lane)] = reached;
              }
            });

  if (obs::recorder* rec = opt.ex.sink(); rec != nullptr) {
    std::size_t reached_total = 0;
    std::size_t peak = 0;
    for (std::size_t lane = 0; lane < r.reached.size(); ++lane) {
      reached_total += r.reached[lane];
    }
    for (std::size_t f : r.frontier_sizes) peak = f > peak ? f : peak;
    rec->set_meta("kernel", "msbfs");
    rec->set_meta("partition", rt::partition_mode_name(opt.partition));
    rec->set_value("msbfs.lanes", static_cast<double>(lanes));
    rec->get_counter("msbfs.batches").inc(0);
    rec->get_counter("msbfs.levels")
        .add(0, static_cast<std::uint64_t>(r.frontier_sizes.size()));
    rec->get_counter("msbfs.reached")
        .add(0, static_cast<std::uint64_t>(reached_total));
    rec->get_counter("msbfs.frontier_peak")
        .add(0, static_cast<std::uint64_t>(peak));
  }
  return r;
}

msbfs_pool::msbfs_pool(options opt) : opt_(std::move(opt)) {
  MICG_CHECK(opt_.lanes >= 1 && opt_.lanes <= msbfs_max_lanes,
             "msbfs_pool lanes must be in [1, 64]");
  MICG_CHECK(opt_.ex.threads >= 1, "need at least one thread");
}

template <micg::graph::CsrGraph G>
void msbfs_pool::for_each_batch(
    const G& g, std::span<const typename G::vertex_type> sources,
    const std::function<void(const msbfs_batch&, const msbfs_result&)>& fn)
    const {
  const auto total = static_cast<std::int64_t>(sources.size());
  if (total == 0) return;
  const std::int64_t lanes = opt_.lanes;
  const std::int64_t nbatches = (total + lanes - 1) / lanes;

  if (obs::recorder* rec = opt_.ex.sink(); rec != nullptr) {
    rec->set_meta("batch_size", std::to_string(lanes));
    rec->get_counter("msbfs.sources")
        .add(0, static_cast<std::uint64_t>(total));
  }

  auto run_batch = [&](std::int64_t b, const msbfs_options& mo, int worker) {
    const std::int64_t first = b * lanes;
    const auto batch_lanes =
        static_cast<int>(std::min<std::int64_t>(lanes, total - first));
    const auto res = msbfs(
        g,
        sources.subspan(static_cast<std::size_t>(first),
                        static_cast<std::size_t>(batch_lanes)),
        mo);
    msbfs_batch info;
    info.index = static_cast<int>(b);
    info.first_source = first;
    info.lanes = batch_lanes;
    info.worker = worker;
    fn(info, res);
  };

  if (opt_.ex.threads > 1 && nbatches >= opt_.ex.threads) {
    // Enough batches to feed every worker: distribute whole batches, each
    // traversed sequentially (msbfs with threads == 1 never re-enters the
    // pool, so nesting inside this region is safe).
    rt::exec outer = opt_.ex;
    outer.kind = rt::backend::omp_dynamic;
    outer.chunk = 1;
    msbfs_options inner;
    inner.ex = opt_.ex;
    inner.ex.threads = 1;
    inner.partition = opt_.partition;
    rt::for_range(outer, nbatches,
                  [&](std::int64_t bb, std::int64_t be, int worker) {
                    for (std::int64_t b = bb; b < be; ++b) {
                      run_batch(b, inner, worker);
                    }
                  });
  } else {
    msbfs_options mo;
    mo.ex = opt_.ex;
    mo.partition = opt_.partition;
    for (std::int64_t b = 0; b < nbatches; ++b) run_batch(b, mo, 0);
  }
}

template <micg::graph::CsrGraph G>
std::vector<std::vector<int>> msbfs_pool::run_levels(
    const G& g, std::span<const typename G::vertex_type> sources) const {
  std::vector<std::vector<int>> out(sources.size());
  for_each_batch(g, sources,
                 [&](const msbfs_batch& b, const msbfs_result& res) {
                   for (int lane = 0; lane < b.lanes; ++lane) {
                     const auto lv = res.lane_levels(lane);
                     out[static_cast<std::size_t>(b.first_source) +
                         static_cast<std::size_t>(lane)]
                         .assign(lv.begin(), lv.end());
                   }
                 });
  return out;
}

#define MICG_INSTANTIATE(G)                                               \
  template msbfs_result msbfs<G>(                                         \
      const G&, std::span<const typename G::vertex_type>,                 \
      const msbfs_options&);                                              \
  template void msbfs_pool::for_each_batch<G>(                            \
      const G&, std::span<const typename G::vertex_type>,                 \
      const std::function<void(const msbfs_batch&, const msbfs_result&)>&) \
      const;                                                              \
  template std::vector<std::vector<int>> msbfs_pool::run_levels<G>(       \
      const G&, std::span<const typename G::vertex_type>) const;
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::bfs
