#include "micg/bfs/compact_frontier.hpp"

#include <algorithm>
#include <atomic>

#include "micg/rt/scan.hpp"
#include "micg/support/assert.hpp"

namespace micg::bfs {

template <std::signed_integral VId>
basic_compact_frontier<VId>::basic_compact_frontier(int max_workers)
    : segments_(std::make_unique<micg::padded<std::vector<VId>>[]>(
          static_cast<std::size_t>(max_workers))),
      max_workers_(max_workers) {
  MICG_CHECK(max_workers >= 1, "need at least one worker");
}

template <std::signed_integral VId>
std::size_t basic_compact_frontier<VId>::total_size() const {
  std::size_t total = 0;
  for (int w = 0; w < max_workers_; ++w) {
    total += segments_[static_cast<std::size_t>(w)].value.size();
  }
  return total;
}

template <std::signed_integral VId>
std::vector<VId> basic_compact_frontier<VId>::compact(const rt::exec& ex) {
  // Book keeping: exclusive scan over segment sizes gives each worker's
  // offset into the dense output.
  std::vector<std::size_t> offsets(static_cast<std::size_t>(max_workers_));
  for (int w = 0; w < max_workers_; ++w) {
    offsets[static_cast<std::size_t>(w)] =
        segments_[static_cast<std::size_t>(w)].value.size();
  }
  const std::size_t total = rt::parallel_exclusive_scan(ex, offsets);

  std::vector<VId> out(total);
  // Parallel copy: one task per worker segment.
  rt::for_range(ex, max_workers_,
                [&](std::int64_t b, std::int64_t e, int) {
                  for (std::int64_t w = b; w < e; ++w) {
                    auto& seg = segments_[static_cast<std::size_t>(w)].value;
                    std::copy(seg.begin(), seg.end(),
                              out.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      offsets[static_cast<std::size_t>(w)]));
                    seg.clear();
                  }
                });
  return out;
}

template class basic_compact_frontier<std::int32_t>;
template class basic_compact_frontier<std::int64_t>;

template <micg::graph::CsrGraph G>
compact_bfs_result parallel_bfs_compact(const G& g,
                                        typename G::vertex_type source,
                                        const compact_bfs_options& opt) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  MICG_CHECK(source >= 0 && source < n, "source out of range");
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");

  std::vector<std::atomic<int>> level(static_cast<std::size_t>(n));
  for (auto& l : level) l.store(-1, std::memory_order_relaxed);

  const rt::exec& ex = opt.ex;
  basic_compact_frontier<VId> frontier(opt.ex.threads);
  std::vector<VId> cur{source};
  level[static_cast<std::size_t>(source)].store(0,
                                                std::memory_order_relaxed);

  int depth = 1;
  while (!cur.empty()) {
    rt::for_range(
        ex, static_cast<std::int64_t>(cur.size()),
        [&](std::int64_t b, std::int64_t e, int worker) {
          for (std::int64_t i = b; i < e; ++i) {
            const VId v = cur[static_cast<std::size_t>(i)];
            for (VId w : g.neighbors(v)) {
              int expected = -1;
              if (level[static_cast<std::size_t>(w)]
                      .compare_exchange_strong(expected, depth,
                                               std::memory_order_relaxed,
                                               std::memory_order_relaxed)) {
                frontier.push(worker, w);
              }
            }
          }
        });
    cur = frontier.compact(ex);
    ++depth;
  }

  compact_bfs_result r;
  r.level.resize(static_cast<std::size_t>(n));
  int max_level = -1;
  for (VId v = 0; v < n; ++v) {
    r.level[static_cast<std::size_t>(v)] =
        level[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    if (r.level[static_cast<std::size_t>(v)] >= 0) {
      ++r.reached;
      max_level =
          std::max(max_level, r.level[static_cast<std::size_t>(v)]);
    }
  }
  r.num_levels = max_level + 1;
  return r;
}

#define MICG_INSTANTIATE(G)                            \
  template compact_bfs_result parallel_bfs_compact<G>( \
      const G&, typename G::vertex_type, const compact_bfs_options&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::bfs
