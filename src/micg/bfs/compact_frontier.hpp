// Compacting frontier — the §IV-C road not taken, built for the ablation.
//
// "At the end of a level, it is possible that some threads have not
// entirely filled the last block ... One approach is to compact the queue
// by swapping the last filled elements with these spaces, but this
// requires a complex book keeping data structure. Instead, we fill the
// remaining of the block with a sentinel value."
//
// This type implements the compaction approach the paper rejected:
// per-worker segments collect vertices, and at the end of the level a
// parallel exclusive scan over segment sizes computes each segment's
// offset in the dense output (no sentinels, perfectly packed), at the
// price of the scan pass and a parallel copy. bench/ablate_block_size
// compares both designs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/rt/exec.hpp"
#include "micg/support/cacheline.hpp"

namespace micg::bfs {

template <std::signed_integral VId>
class basic_compact_frontier {
 public:
  explicit basic_compact_frontier(int max_workers);

  /// Append to the calling worker's private segment (no synchronization).
  void push(int worker, VId v) {
    segments_[static_cast<std::size_t>(worker)].value.push_back(v);
  }

  /// Compact all segments into a dense vector: parallel exclusive scan of
  /// segment sizes + parallel copy. Segments are cleared (capacity kept).
  std::vector<VId> compact(const rt::exec& ex);

  [[nodiscard]] std::size_t total_size() const;

 private:
  std::unique_ptr<micg::padded<std::vector<VId>>[]> segments_;
  int max_workers_;
};

using compact_frontier = basic_compact_frontier<micg::graph::vertex_t>;

/// Layered BFS using the compacting frontier (locked insertion); the
/// ablation counterpart of bfs_variant::omp_block. Levels are identical
/// to seq_bfs.
struct compact_bfs_options {
  /// Threads, chunk, backend kind, pool and metrics sink — the compacting
  /// BFS honors ex.kind (default OpenMP-dynamic) since any substrate can
  /// schedule its per-level loops.
  rt::exec ex;
};

struct compact_bfs_result {
  std::vector<int> level;
  int num_levels = 0;
  std::size_t reached = 0;
};

template <micg::graph::CsrGraph G>
compact_bfs_result parallel_bfs_compact(const G& g,
                                        typename G::vertex_type source,
                                        const compact_bfs_options& opt);

}  // namespace micg::bfs
