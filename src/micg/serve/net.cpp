#include "micg/serve/net.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "micg/api/parse.hpp"
#include "micg/support/assert.hpp"

namespace micg::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  MICG_CHECK(false, what + ": " + std::strerror(errno));
  std::abort();  // unreachable; MICG_CHECK threw
}

}  // namespace

std::string endpoint::display() const {
  if (is_unix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

endpoint parse_endpoint(const std::string& spec) {
  MICG_CHECK(!spec.empty(), "empty listen/connect address");
  endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.is_unix = true;
    ep.path = spec.substr(5);
  } else if (spec.find('/') != std::string::npos) {
    ep.is_unix = true;
    ep.path = spec;
  } else {
    const auto colon = spec.rfind(':');
    MICG_CHECK(colon != std::string::npos,
               "address must be unix:PATH, a path, or HOST:PORT: " + spec);
    ep.host = spec.substr(0, colon);
    if (ep.host.empty()) ep.host = "127.0.0.1";
    ep.port = static_cast<int>(
        api::parse_int_in(spec.substr(colon + 1), 1, 65535, "port"));
  }
  if (ep.is_unix) {
    MICG_CHECK(!ep.path.empty(), "empty unix socket path");
    MICG_CHECK(ep.path.size() < sizeof(sockaddr_un{}.sun_path),
               "unix socket path too long: " + ep.path);
  }
  return ep;
}

int listen_on(const endpoint& ep, int backlog) {
  if (ep.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail_errno("socket(AF_UNIX)");
    ::unlink(ep.path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      fail_errno("bind(" + ep.path + ")");
    }
    if (::listen(fd, backlog) < 0) {
      ::close(fd);
      fail_errno("listen(" + ep.path + ")");
    }
    return fd;
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(ep.host.c_str(),
                               std::to_string(ep.port).c_str(), &hints, &res);
  MICG_CHECK(rc == 0, "cannot resolve " + ep.display() + ": " +
                          ::gai_strerror(rc));
  int fd = -1;
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) fail_errno("bind/listen on " + ep.display());
  return fd;
}

int dial(const endpoint& ep) {
  if (ep.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail_errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      ::close(fd);
      fail_errno("connect(" + ep.path + ")");
    }
    return fd;
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(ep.host.c_str(),
                               std::to_string(ep.port).c_str(), &hints, &res);
  MICG_CHECK(rc == 0, "cannot resolve " + ep.display() + ": " +
                          ::gai_strerror(rc));
  int fd = -1;
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) fail_errno("connect to " + ep.display());
  return fd;
}

socket_streambuf::socket_streambuf(int fd) : fd_(fd) {
  setg(in_, in_, in_);
  setp(out_, out_ + buf_size);
}

socket_streambuf::int_type socket_streambuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t n;
  do {
    n = ::read(fd_, in_, buf_size);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return traits_type::eof();
  setg(in_, in_, in_ + n);
  return traits_type::to_int_type(*gptr());
}

bool socket_streambuf::flush_out() {
  const char* p = pbase();
  while (p < pptr()) {
    ssize_t n;
    do {
      n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    p += n;
  }
  setp(out_, out_ + buf_size);
  return true;
}

socket_streambuf::int_type socket_streambuf::overflow(int_type ch) {
  if (!flush_out()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int socket_streambuf::sync() { return flush_out() ? 0 : -1; }

socket_stream::socket_stream(int fd)
    : std::iostream(nullptr), fd_(fd), buf_(fd) {
  rdbuf(&buf_);
}

socket_stream::~socket_stream() {
  if (fd_ >= 0) ::close(fd_);
}

}  // namespace micg::serve
