#include "micg/serve/protocol.hpp"

#include <istream>
#include <utility>

#include "micg/support/assert.hpp"

namespace micg::serve {

frame_status read_frame(std::istream& in, std::string& line,
                        std::size_t max_bytes) {
  line.clear();
  while (true) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      if (in.bad()) return frame_status::io_error;
      return line.empty() ? frame_status::eof : frame_status::ok;
    }
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return frame_status::ok;
    }
    if (line.size() >= max_bytes) return frame_status::too_large;
    line.push_back(static_cast<char>(c));
  }
}

request_envelope parse_request(const std::string& line) {
  const api::json doc = api::json::parse(line);
  MICG_CHECK(doc.is_object(), "request must be a JSON object");
  request_envelope req;
  if (const api::json* f = doc.find("id")) {
    req.id = f->as_string();
    MICG_CHECK(!req.id.empty(), "request id must be a non-empty string");
  }
  req.op = doc.at("op").as_string();
  MICG_CHECK(!req.op.empty(), "request op must be a non-empty string");
  if (const api::json* f = doc.find("graph")) req.graph = f->as_string();
  if (const api::json* f = doc.find("deadline_ms")) {
    req.deadline_ms = f->as_int();
    MICG_CHECK(req.deadline_ms >= 0, "deadline_ms must be >= 0");
  }
  if (const api::json* f = doc.find("params")) req.params = *f;
  MICG_CHECK(req.params.is_object() || req.params.is_null(),
             "request params must be a JSON object");
  return req;
}

std::string make_response(const std::string& id, api::status st,
                          api::json result, const std::string& error_message,
                          std::int64_t epoch) {
  api::json doc{api::json_object{}};
  if (!id.empty()) doc.set("id", api::json(id));
  doc.set("status", api::json(api::status_name(st)));
  if (epoch >= 0) doc.set("epoch", api::json(epoch));
  if (st == api::status::ok) {
    doc.set("result", std::move(result));
  } else {
    doc.set("error", api::json(error_message));
  }
  return doc.dump();
}

std::string ok_response(const std::string& id, api::json result,
                        std::int64_t epoch) {
  return make_response(id, api::status::ok, std::move(result), "", epoch);
}

std::string error_response(const std::string& id, api::status st,
                           const std::string& message) {
  // MICG_CHECK prefixes its messages with the failing expression and the
  // server-side source path ("MICG_CHECK failed: (...) at file:line -- ").
  // That context belongs in server logs, not on the wire: keep only the
  // human-written message after the separator.
  std::string text = message;
  if (text.rfind("MICG_CHECK failed: ", 0) == 0) {
    const auto sep = text.find(" -- ");
    if (sep != std::string::npos) text = text.substr(sep + 4);
  }
  return make_response(id, st, api::json(), text);
}

}  // namespace micg::serve
