// POSIX socket plumbing for micg::serve: address parsing, a streambuf
// over a connected socket, and listen/dial helpers.
//
// The protocol and service layers speak std::iostream; this file is the
// only place that touches file descriptors, so the whole engine is
// testable against string streams and qa::faulty_stream.
//
// Address grammar (shared by `micg serve --listen` and `micg query
// --connect`):
//
//   unix:PATH        explicit unix-domain socket
//   PATH             any spec containing '/' is a unix socket path
//   HOST:PORT        TCP (numeric or resolvable host)
//   :PORT            TCP on loopback
#pragma once

#include <iostream>
#include <streambuf>
#include <string>

namespace micg::serve {

/// A parsed --listen/--connect spec.
struct endpoint {
  bool is_unix = false;
  std::string path;  ///< unix socket path
  std::string host;  ///< TCP host ("127.0.0.1" when omitted)
  int port = 0;

  /// Canonical display form ("unix:/tmp/x.sock", "127.0.0.1:7777").
  [[nodiscard]] std::string display() const;
};

/// Parse the grammar above; throws micg::check_error on malformed specs
/// (bad port, empty path, ...).
endpoint parse_endpoint(const std::string& spec);

/// Bind + listen; returns the listening fd. Unix paths are unlinked
/// first (a previous unclean shutdown leaves the inode behind). Throws
/// micg::check_error with errno context on failure.
int listen_on(const endpoint& ep, int backlog = 64);

/// Connect to a listening endpoint; returns the connected fd.
int dial(const endpoint& ep);

/// Buffered streambuf over a connected socket fd. Writes flush on sync()
/// (the session layer flushes after each response line); reads are
/// blocking. Does not own the fd.
class socket_streambuf : public std::streambuf {
 public:
  explicit socket_streambuf(int fd);

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool flush_out();

  static constexpr std::size_t buf_size = 8192;
  int fd_;
  char in_[buf_size];
  char out_[buf_size];
};

/// iostream over a socket fd it owns (closes on destruction).
class socket_stream : public std::iostream {
 public:
  explicit socket_stream(int fd);
  ~socket_stream() override;
  socket_stream(const socket_stream&) = delete;
  socket_stream& operator=(const socket_stream&) = delete;

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_;
  socket_streambuf buf_;
};

}  // namespace micg::serve
