// Blocking NDJSON client for a micg serve endpoint — the engine behind
// `micg query`, the serving benchmark and the end-to-end tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "micg/api/json.hpp"
#include "micg/serve/net.hpp"

namespace micg::serve {

class client {
 public:
  /// Dial `address` (net.hpp grammar); throws micg::check_error if the
  /// endpoint is unreachable.
  explicit client(const std::string& address);

  /// One raw round trip: send `line` as a frame, return the response
  /// frame. Throws micg::check_error if the server hangs up.
  std::string call_line(const std::string& line);

  /// One request/response round trip with a parsed result.
  api::json call(const api::json& request);

  /// Assemble-and-call convenience. `params` may be null; `deadline_ms`
  /// 0 omits the field; `id` empty omits the field.
  api::json call(const std::string& op, const std::string& graph,
                 api::json params = api::json(),
                 std::int64_t deadline_ms = 0, const std::string& id = "");

 private:
  std::unique_ptr<socket_stream> stream_;
};

/// Build a request object in canonical field order (used by the client,
/// the CLI's --script mode and the tests).
api::json make_request(const std::string& op, const std::string& graph,
                       api::json params = api::json(),
                       std::int64_t deadline_ms = 0,
                       const std::string& id = "");

}  // namespace micg::serve
