#include "micg/serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "micg/support/assert.hpp"

namespace micg::serve {

server::server(graph_store& store, server_options opt, obs::recorder* rec)
    : store_(store),
      opt_(std::move(opt)),
      ep_(parse_endpoint(opt_.listen)),
      svc_(store_, opt_.svc, rec) {}

server::~server() {
  request_shutdown();
  // run() owns the joins; if it never ran (bind failed, or the caller
  // tore down early), close what we hold.
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

void server::bind_and_listen() {
  MICG_CHECK(listen_fd_.load() < 0, "server is already listening");
  listen_fd_.store(listen_on(ep_, opt_.backlog));
}

void server::request_shutdown() {
  const int fd = listen_fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void server::session_main(int fd) {
  socket_stream stream(fd);
  svc_.serve_session(stream, stream);
  {
    const std::lock_guard<std::mutex> lock(smu_);
    session_fds_.erase(fd);
  }
  // A session that carried the `shutdown` op pops the accept loop.
  if (svc_.shutdown_requested()) request_shutdown();
}

void server::run() {
  const int lfd = listen_fd_.load();
  MICG_CHECK(lfd >= 0, "run() before bind_and_listen()");
  while (true) {
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR && !svc_.shutdown_requested()) continue;
      break;  // listener was shut down (or died) — begin teardown
    }
    if (svc_.shutting_down()) {
      ::close(cfd);
      continue;
    }
    {
      // Register the fd before the thread exists so a concurrent
      // teardown can always unblock this session's reads.
      const std::lock_guard<std::mutex> lock(smu_);
      session_fds_.insert(cfd);
    }
    threads_.emplace_back([this, cfd] { session_main(cfd); });
  }

  svc_.begin_shutdown();
  {
    const std::lock_guard<std::mutex> lock(smu_);
    for (const int fd : session_fds_) ::shutdown(fd, SHUT_RD);
  }
  for (auto& th : threads_) th.join();
  threads_.clear();
  svc_.drain();

  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
  if (ep_.is_unix) ::unlink(ep_.path.c_str());
}

}  // namespace micg::serve
