// Named, versioned graph state for the resident query service.
//
// The serving model (docs/serving.md) is snapshot isolation:
//
//  * the current graph of each name is an immutable CSR snapshot tagged
//    with a monotonically increasing epoch;
//  * a query *pins* the snapshot (a shared_ptr copy) once, at admission,
//    and computes against it for its whole lifetime — a concurrent
//    compaction swaps the current snapshot but never mutates or frees a
//    pinned one;
//  * mutations (edge insert/delete) buffer into a graph::edge_delta and
//    are invisible to queries until compact() folds them into the next
//    snapshot (built in the narrowest layout via the existing
//    convert_csr/select_layout machinery) and bumps the epoch.
//
// Locking discipline: versioned_graph carries two mutexes. `wmu_`
// serializes writers (insert/erase/compact) against each other for the
// whole — possibly long — compaction rebuild. `mu_` guards the
// {snapshot, epoch, delta} triple for the short read/swap critical
// sections, so readers never wait on a rebuild: snapshot() is a pointer
// copy under `mu_` regardless of writer activity.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "micg/graph/any_csr.hpp"
#include "micg/graph/delta.hpp"

namespace micg::serve {

/// One named graph: an immutable snapshot lineage plus a buffered delta.
class versioned_graph {
 public:
  explicit versioned_graph(graph::any_csr g);

  /// A query's pinned view: the snapshot pointer keeps the graph alive
  /// across any number of concurrent compactions.
  struct pin {
    std::shared_ptr<const graph::any_csr> graph;
    std::int64_t epoch = 0;
  };

  /// Pin the current snapshot (cheap: one lock, one shared_ptr copy).
  [[nodiscard]] pin snapshot() const;

  [[nodiscard]] std::int64_t epoch() const;
  /// Net buffered mutations not yet visible to queries.
  [[nodiscard]] std::size_t pending_ops() const;

  /// Buffer "edge {u,v} present after the next compaction". Throws
  /// micg::check_error on negative ids or self loops.
  void insert(std::int64_t u, std::int64_t v);
  /// Buffer "edge {u,v} absent after the next compaction".
  void erase(std::int64_t u, std::int64_t v);

  /// Fold the buffered delta into a new snapshot (narrowest layout) and
  /// bump the epoch. Serializes against other writers; readers continue
  /// to pin the old snapshot until the final swap. Returns the new epoch
  /// (a no-op returns the current epoch without bumping when the delta
  /// is empty).
  std::int64_t compact();

 private:
  mutable std::mutex mu_;  ///< guards snapshot_/epoch_/delta_
  std::mutex wmu_;         ///< serializes insert/erase/compact
  std::shared_ptr<const graph::any_csr> snapshot_;
  graph::edge_delta delta_;
  std::int64_t epoch_ = 0;
};

/// The server's name -> versioned_graph directory. Thread-safe.
class graph_store {
 public:
  /// Register a graph under `name` at epoch 0; throws micg::check_error
  /// if the name is taken or empty.
  void add(const std::string& name, graph::any_csr g);

  /// Lookup; nullptr when absent. The returned pointer stays valid for
  /// the store's lifetime (graphs are never removed while serving).
  [[nodiscard]] std::shared_ptr<versioned_graph> find(
      const std::string& name) const;

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<versioned_graph>> graphs_;
};

}  // namespace micg::serve
