#include "micg/serve/store.hpp"

#include <utility>

#include "micg/support/assert.hpp"

namespace micg::serve {

versioned_graph::versioned_graph(graph::any_csr g)
    : snapshot_(std::make_shared<const graph::any_csr>(std::move(g))) {}

versioned_graph::pin versioned_graph::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {snapshot_, epoch_};
}

std::int64_t versioned_graph::epoch() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::size_t versioned_graph::pending_ops() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return delta_.size();
}

void versioned_graph::insert(std::int64_t u, std::int64_t v) {
  const std::lock_guard<std::mutex> wlock(wmu_);
  const std::lock_guard<std::mutex> lock(mu_);
  delta_.insert(u, v);
}

void versioned_graph::erase(std::int64_t u, std::int64_t v) {
  const std::lock_guard<std::mutex> wlock(wmu_);
  const std::lock_guard<std::mutex> lock(mu_);
  delta_.erase(u, v);
}

std::int64_t versioned_graph::compact() {
  // Writers (and other compactions) wait here; readers do not — they
  // keep pinning the old snapshot through mu_ until the swap below.
  const std::lock_guard<std::mutex> wlock(wmu_);
  std::shared_ptr<const graph::any_csr> base;
  graph::edge_delta delta;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (delta_.empty()) return epoch_;
    base = snapshot_;
    delta = delta_;
  }
  // The expensive rebuild runs outside mu_. Holding wmu_ guarantees the
  // delta cannot grow underneath us, so clearing it at the swap is exact.
  auto next =
      std::make_shared<const graph::any_csr>(graph::apply_delta(*base, delta));
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snapshot_ = std::move(next);
    delta_.clear();
    return ++epoch_;
  }
}

void graph_store::add(const std::string& name, graph::any_csr g) {
  MICG_CHECK(!name.empty(), "graph name must not be empty");
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = graphs_.emplace(
      name, std::make_shared<versioned_graph>(std::move(g)));
  MICG_CHECK(inserted, "graph name already registered: " + name);
}

std::shared_ptr<versioned_graph> graph_store::find(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(name);
  return it != graphs_.end() ? it->second : nullptr;
}

std::vector<std::string> graph_store::names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(graphs_.size());
  for (const auto& [name, vg] : graphs_) out.push_back(name);
  return out;
}

std::size_t graph_store::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return graphs_.size();
}

}  // namespace micg::serve
