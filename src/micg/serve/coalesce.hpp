// Query coalescing: batch concurrent single-source `bfs` requests into
// one MSBFS traversal.
//
// MSBFS (bfs/msbfs.hpp) answers up to 64 sources for roughly one edge
// sweep, but only if someone collects 64 concurrent questions. That is
// this class: the first `bfs` arrival for a graph opens a *forming
// batch* and becomes its leader; later arrivals for the same graph join
// as followers. The batch seals when the formation window expires or
// `max_lanes` requests have joined, whichever is first; the leader then
// runs the whole batch (one admission slot, one pinned snapshot, one
// msbfs call — see service::run_coalesced_batch) and publishes each
// member's response. Followers block on the batch, never on admission,
// so a small `max_inflight` cannot starve batch formation.
//
// The trade is explicit: every coalesced request waits up to `window_ms`
// of formation latency to share the traversal. Lane levels are
// bit-identical to a per-request seq_bfs (the MSBFS invariant), so
// coalescing changes *when* a response arrives, never *what* it says.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "micg/api/api.hpp"
#include "micg/bfs/msbfs.hpp"

namespace micg::serve {

struct coalesce_options {
  /// Formation window: how long the first request of a batch waits for
  /// company before sealing, in milliseconds. 0 disables coalescing.
  std::int64_t window_ms = 0;
  /// Seal early once this many requests joined. [1, 64] — one msbfs
  /// lane word.
  int max_lanes = bfs::msbfs_max_lanes;
};

/// One request's slot in a batch.
struct coalesce_member {
  api::bfs_request req;
  std::string id;                ///< envelope id, echoed in the response
  std::int64_t deadline_ms = 0;  ///< admission budget (leader's is used)
  std::string response;          ///< response line, filled by the runner
};

class coalescer {
 public:
  /// Runs one sealed batch: admission, snapshot pin, one msbfs, demux.
  /// Must fill every member's `response` and must not throw (a throw is
  /// caught and turned into per-member `internal` responses).
  using batch_runner = std::function<void(const std::string& graph,
                                          std::vector<coalesce_member>&)>;

  coalescer(coalesce_options opt, batch_runner run);

  [[nodiscard]] const coalesce_options& opts() const { return opt_; }

  /// Join (or open) the forming batch for `graph`; blocks until the
  /// batch ran and returns this request's response line.
  std::string submit(const std::string& graph, api::bfs_request req,
                     std::string id, std::int64_t deadline_ms);

 private:
  struct batch {
    std::vector<coalesce_member> members;
    std::condition_variable cv;
    std::chrono::steady_clock::time_point deadline;
    bool done = false;
  };

  const coalesce_options opt_;
  const batch_runner run_;
  std::mutex mu_;
  /// Graph name -> its currently forming batch. The leader erases its
  /// entry when the batch seals, so later arrivals open a fresh batch.
  std::map<std::string, std::shared_ptr<batch>> forming_;
};

}  // namespace micg::serve
