#include "micg/serve/service.hpp"

#include <chrono>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

#include "micg/support/assert.hpp"
#include "micg/support/timer.hpp"

namespace micg::serve {

namespace {

/// Parse the {"edges": [[u,v], ...]} payload of insert/erase.
std::vector<std::pair<std::int64_t, std::int64_t>> parse_edges(
    const api::json& params) {
  MICG_CHECK(params.is_object(), "insert/erase need an {\"edges\": ...} param");
  const api::json& edges = params.at("edges");
  std::vector<std::pair<std::int64_t, std::int64_t>> out;
  out.reserve(edges.as_array().size());
  for (const api::json& e : edges.as_array()) {
    MICG_CHECK(e.is_array() && e.as_array().size() == 2,
               "each edge must be a [u, v] pair");
    out.emplace_back(e.as_array()[0].as_int(), e.as_array()[1].as_int());
  }
  MICG_CHECK(!out.empty(), "edges must be non-empty");
  return out;
}

}  // namespace

service::service(graph_store& store, service_options opt, obs::recorder* rec)
    : store_(store), opt_(opt), rec_(rec) {
  MICG_CHECK(opt_.max_inflight >= 1, "max_inflight must be >= 1");
  MICG_CHECK(opt_.max_waiting >= 0, "max_waiting must be >= 0");
  MICG_CHECK(opt_.threads_per_query >= 1, "threads_per_query must be >= 1");
  MICG_CHECK(opt_.max_frame_bytes >= 64, "max_frame_bytes must be >= 64");
  MICG_CHECK(opt_.default_deadline_ms >= 0,
             "default_deadline_ms must be >= 0");
  MICG_CHECK(opt_.compact_every >= 0, "compact_every must be >= 0");
  MICG_CHECK(opt_.coalesce_window_ms >= 0,
             "coalesce_window_ms must be >= 0");
  MICG_CHECK(opt_.coalesce_lanes >= 1 &&
                 opt_.coalesce_lanes <= bfs::msbfs_max_lanes,
             "coalesce_lanes must be in [1, 64]");
  MICG_CHECK(opt_.landmark_count >= 1 &&
                 opt_.landmark_count <= bfs::landmark_max_count,
             "landmark_count must be in [1, 64]");
  // Validates the mode name too (throws on junk like --tune sometimes).
  tune_mode_ = tune::resolve_tune_mode(opt_.tune);
  pools_.resize(static_cast<std::size_t>(opt_.max_inflight));
  free_slots_.reserve(static_cast<std::size_t>(opt_.max_inflight));
  for (int i = opt_.max_inflight - 1; i >= 0; --i) free_slots_.push_back(i);
  if (opt_.coalesce_window_ms > 0) {
    coalesce_options co;
    co.window_ms = opt_.coalesce_window_ms;
    co.max_lanes = opt_.coalesce_lanes;
    coalescer_ = std::make_unique<coalescer>(
        co, [this](const std::string& graph,
                   std::vector<coalesce_member>& members) {
          run_coalesced_batch(graph, members);
        });
  }
  if (tune_mode_ != tune::tune_mode::fixed) {
    // Tune resident graphs at load time: every query then starts with a
    // cached plan instead of paying the first-probe latency.
    for (const auto& name : store_.names()) {
      const auto vg = store_.find(name);
      if (vg != nullptr) plan_for(name, vg->snapshot());
    }
  }
}

service::~service() {
  begin_shutdown();
  drain();
}

service::admit_result service::admit(std::int64_t deadline_ms) {
  // Negative deadlines are rejected at parse time (protocol.cpp) and
  // again by handle(); admit() must never quietly fold them into the
  // default budget, so in-process misuse fails loudly here instead.
  MICG_CHECK(deadline_ms >= 0, "deadline_ms must be >= 0");
  micg::stopwatch sw;
  std::unique_lock<std::mutex> lock(amu_);
  if (shutting_down_) return {api::status::shutting_down, -1, 0.0};
  const auto can_run = [&] { return inflight_ < opt_.max_inflight; };
  if (!can_run()) {
    if (waiting_ >= opt_.max_waiting) {
      return {api::status::overloaded, -1, 0.0};
    }
    ++waiting_;
    const std::int64_t budget =
        deadline_ms > 0 ? deadline_ms : opt_.default_deadline_ms;
    bool ready = true;
    if (budget > 0) {
      ready = acv_.wait_for(lock, std::chrono::milliseconds(budget),
                            [&] { return shutting_down_ || can_run(); });
    } else {
      acv_.wait(lock, [&] { return shutting_down_ || can_run(); });
    }
    --waiting_;
    acv_.notify_all();  // a drain() may be waiting on `waiting_` to drop
    if (shutting_down_) {
      return {api::status::shutting_down, -1, sw.seconds()};
    }
    if (!ready || !can_run()) {
      return {api::status::deadline_exceeded, -1, sw.seconds()};
    }
  }
  ++inflight_;
  const int slot = free_slots_.back();
  free_slots_.pop_back();
  auto& pool = pools_[static_cast<std::size_t>(slot)];
  if (pool == nullptr && opt_.threads_per_query > 1) {
    pool = std::make_unique<rt::thread_pool>(opt_.threads_per_query);
  }
  return {api::status::ok, slot, sw.seconds()};
}

void service::release(int slot) {
  const std::lock_guard<std::mutex> lock(amu_);
  free_slots_.push_back(slot);
  --inflight_;
  acv_.notify_all();
}

void service::begin_shutdown() {
  const std::lock_guard<std::mutex> lock(amu_);
  shutting_down_ = true;
  acv_.notify_all();
}

bool service::shutting_down() const {
  const std::lock_guard<std::mutex> lock(amu_);
  return shutting_down_;
}

bool service::shutdown_requested() const {
  const std::lock_guard<std::mutex> lock(amu_);
  return shutdown_requested_;
}

void service::drain() {
  std::unique_lock<std::mutex> lock(amu_);
  acv_.wait(lock, [&] { return inflight_ == 0 && waiting_ == 0; });
}

api::json service::execute(const request_envelope& req,
                           rt::thread_pool* pool) {
  if (req.op == "sleep") {
    // Diagnostic: occupy an admission slot for a bounded time. This is
    // how the admission tests (and operators probing shedding behavior)
    // create load with a known shape.
    std::int64_t ms = 0;
    if (const api::json* f = req.params.find("ms")) ms = f->as_int();
    MICG_CHECK(ms >= 0 && ms <= 60000, "sleep ms must be in [0, 60000]");
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return api::json(api::json_object{{"slept_ms", api::json(ms)}});
  }

  MICG_CHECK(!req.graph.empty(), "op '" + req.op + "' needs a graph name");
  const std::shared_ptr<versioned_graph> vg = store_.find(req.graph);
  if (vg == nullptr) {
    throw not_found_error("unknown graph: " + req.graph);
  }

  if (req.op == "approx_dist") {
    const api::dist_request dreq = api::dist_request_from_json(req.params);
    const versioned_graph::pin pin = vg->snapshot();
    const std::int64_t n = pin.graph->num_vertices();
    MICG_CHECK(n > 0, "approx_dist on an empty graph");
    const std::int64_t source = dreq.source < 0 ? n / 2 : dreq.source;
    MICG_CHECK(source < n, "source vertex out of range");
    MICG_CHECK(dreq.target >= 0 && dreq.target < n,
               "target vertex out of range");

    api::dist_response r;
    r.source = source;
    r.target = dreq.target;
    const auto idx = landmark_for(req.graph, pin, pool);
    r.landmarks = idx->count();
    const bfs::landmark_estimate est = idx->estimate(source, dreq.target);
    if (est.exact) {
      // The index is definitive: same vertex, provably disjoint
      // components, or bounds that met. Exact even when exact=true.
      r.distance = est.disjoint ? -1 : est.upper;
      if (rec_ != nullptr) rec_->get_counter("serve.landmark.hits").inc(0);
    } else if (!dreq.exact && est.upper >= 0) {
      r.distance = est.upper;
      r.approximate = true;
      r.lower = est.lower;
      r.upper = est.upper;
      if (rec_ != nullptr) rec_->get_counter("serve.landmark.hits").inc(0);
    } else {
      // Exact demanded, or no pivot reaches both endpoints: one real
      // traversal on the same pinned snapshot.
      api::bfs_request breq;
      breq.source = source;
      breq.targets = {dreq.target};
      api::run_context ctx;
      ctx.pool = pool;
      ctx.max_threads = opt_.threads_per_query;
      ctx.rec = rec_;
      ctx.snapshot_epoch = pin.epoch;
      r.distance = api::run(*pin.graph, breq, ctx).target_levels.front();
      if (rec_ != nullptr) {
        rec_->get_counter("serve.landmark.fallbacks").inc(0);
      }
    }
    return api::json(api::json_object{{"epoch", api::json(pin.epoch)},
                                      {"result", api::to_json(r)}});
  }

  if (api::is_query_op(req.op)) {
    const versioned_graph::pin pin = vg->snapshot();
    api::run_context ctx;
    ctx.pool = pool;
    ctx.max_threads = opt_.threads_per_query;
    ctx.rec = rec_;
    ctx.snapshot_epoch = pin.epoch;
    std::shared_ptr<const tune::knob_plan> plan;  // keeps ctx.plan alive
    api::json params = req.params;
    if (tune_mode_ != tune::tune_mode::fixed) {
      plan = plan_for(req.graph, pin);
      ctx.plan = plan.get();
      // The server's mode is the default; a request's own "tune" field
      // still wins (it can opt back to fixed, or re-probe inline).
      if (params.is_null() || params.find("tune") == nullptr) {
        params.set("tune", api::json(tune::tune_mode_name(tune_mode_)));
      }
    }
    api::json result = api::dispatch_query(*pin.graph, req.op, params, ctx);
    return api::json(api::json_object{{"epoch", api::json(pin.epoch)},
                                      {"result", std::move(result)}});
  }

  if (req.op == "insert" || req.op == "erase") {
    const auto edges = parse_edges(req.params);
    for (const auto& [u, v] : edges) {
      if (req.op == "insert") {
        vg->insert(u, v);
      } else {
        vg->erase(u, v);
      }
    }
    bool compacted = false;
    if (opt_.compact_every > 0 &&
        vg->pending_ops() >= static_cast<std::size_t>(opt_.compact_every)) {
      vg->compact();
      refresh_landmarks(req.graph, *vg, pool);
      if (tune_mode_ != tune::tune_mode::fixed) {
        plan_for(req.graph, vg->snapshot());
      }
      compacted = true;
    }
    return api::json(api::json_object{
        {"epoch", api::json(vg->epoch())},
        {"result",
         api::json(api::json_object{
             {"buffered", api::json(static_cast<std::int64_t>(edges.size()))},
             {"pending",
              api::json(static_cast<std::int64_t>(vg->pending_ops()))},
             {"compacted", api::json(compacted)}})}});
  }

  if (req.op == "compact") {
    const std::int64_t epoch = vg->compact();
    refresh_landmarks(req.graph, *vg, pool);
    if (tune_mode_ != tune::tune_mode::fixed) {
      plan_for(req.graph, vg->snapshot());
    }
    const versioned_graph::pin pin = vg->snapshot();
    return api::json(api::json_object{
        {"epoch", api::json(epoch)},
        {"result",
         api::json(api::json_object{
             {"layout",
              api::json(graph::layout_name(pin.graph->layout()))},
             {"num_vertices", api::json(pin.graph->num_vertices())},
             {"num_edges", api::json(pin.graph->num_edges())},
             {"pending",
              api::json(static_cast<std::int64_t>(vg->pending_ops()))}})}});
  }

  throw not_found_error("unknown op: " + req.op);
}

std::shared_ptr<const bfs::landmark_index> service::landmark_for(
    const std::string& name, const versioned_graph::pin& pin,
    rt::thread_pool* pool) {
  {
    const std::lock_guard<std::mutex> lock(lmu_);
    const auto it = landmarks_.find(name);
    if (it != landmarks_.end() && it->second.epoch == pin.epoch) {
      return it->second.idx;
    }
  }
  // Build outside the lock: the precompute is an msbfs-sized edge sweep
  // and must not block other graphs' cache lookups. Racing builders do
  // redundant work but produce identical indexes (the pivot rule is
  // deterministic), and every lookup re-checks the epoch key, so a
  // last-writer-wins insert can never serve a stale answer.
  bfs::landmark_options lo;
  lo.count = opt_.landmark_count;
  lo.ex.threads = opt_.threads_per_query;
  lo.ex.pool = pool;
  lo.ex.rec = rec_;
  auto idx = std::make_shared<const bfs::landmark_index>(
      bfs::build_landmarks(*pin.graph, lo));
  {
    const std::lock_guard<std::mutex> lock(lmu_);
    landmarks_[name] = {pin.epoch, idx};
  }
  if (rec_ != nullptr) rec_->get_counter("serve.landmark.builds").inc(0);
  return idx;
}

void service::refresh_landmarks(const std::string& name, versioned_graph& vg,
                                rt::thread_pool* pool) {
  {
    const std::lock_guard<std::mutex> lock(lmu_);
    if (landmarks_.find(name) == landmarks_.end()) return;  // stay lazy
  }
  // An index exists, so someone is querying this graph: rebuild against
  // the post-compaction snapshot now (the mutating request pays, like
  // the compaction itself) instead of on the next approx_dist.
  landmark_for(name, vg.snapshot(), pool);
}

std::shared_ptr<const tune::knob_plan> service::plan_for(
    const std::string& name, const versioned_graph::pin& pin) {
  {
    const std::lock_guard<std::mutex> lock(pmu_);
    const auto it = plans_.find(name);
    if (it != plans_.end() && it->second.epoch == pin.epoch) {
      return it->second.plan;
    }
  }
  // Probe + pick outside the lock (one xadj sweep; racing computations
  // of the same immutable snapshot produce identical plans, last wins —
  // the landmark_for discipline).
  const auto stats = stats_.get(name, pin.epoch, *pin.graph);
  auto plan = std::make_shared<const tune::knob_plan>(
      tune::pick_knobs(tune::profile_for_mode(tune_mode_), *stats));
  {
    const std::lock_guard<std::mutex> lock(pmu_);
    plans_[name] = {pin.epoch, plan};
  }
  if (rec_ != nullptr) {
    rec_->get_counter("serve.tune.plans").inc(0);
    rec_->set_meta("tune.mode", tune::tune_mode_name(tune_mode_));
    rec_->set_meta("tune." + name + ".knobs", tune::knobs_summary(*plan));
  }
  return plan;
}

void service::run_coalesced_batch(const std::string& graph,
                                  std::vector<coalesce_member>& members) {
  if (rec_ != nullptr) {
    rec_->get_counter("serve.requests")
        .add(0, static_cast<std::uint64_t>(members.size()));
    rec_->get_counter("serve.coalesce.batches").inc(0);
    rec_->get_counter("serve.coalesce.requests")
        .add(0, static_cast<std::uint64_t>(members.size()));
  }

  // One admission slot for the whole batch (the leader's deadline is the
  // batch's); a leader-side admission failure is every member's failure.
  const admit_result adm = admit(members.front().deadline_ms);
  if (adm.st != api::status::ok) {
    if (rec_ != nullptr) {
      if (adm.st == api::status::overloaded) {
        rec_->get_counter("serve.shed")
            .add(0, static_cast<std::uint64_t>(members.size()));
      }
      if (adm.st == api::status::deadline_exceeded) {
        rec_->get_counter("serve.deadline_expired")
            .add(0, static_cast<std::uint64_t>(members.size()));
      }
    }
    const char* msg = adm.st == api::status::overloaded
                          ? "admission queue full, retry later"
                          : adm.st == api::status::deadline_exceeded
                                ? "request waited past its deadline"
                                : "server is shutting down";
    for (auto& m : members) m.response = error_response(m.id, adm.st, msg);
    return;
  }

  rt::thread_pool* pool = pools_[static_cast<std::size_t>(adm.slot)].get();
  {
    // One span per batch (not per member): the unit of serving work here
    // is the shared traversal.
    obs::span span;
    if (rec_ != nullptr) {
      span = rec_->start_span("serve.coalesce/" + graph);
      span.value("members", static_cast<double>(members.size()));
      span.value("wait_ms", adm.wait_seconds * 1e3);
    }
    try {
      const std::shared_ptr<versioned_graph> vg = store_.find(graph);
      if (vg == nullptr) {
        throw not_found_error("unknown graph: " + graph);
      }
      const versioned_graph::pin pin = vg->snapshot();
      const std::int64_t n = pin.graph->num_vertices();
      MICG_CHECK(n > 0, "bfs on an empty graph");

      // Resolve sources against the pinned snapshot; duplicates share a
      // lane. A member with a bad source gets its own bad_request and is
      // excluded instead of poisoning the whole batch.
      std::vector<std::int64_t> lane_sources;
      std::map<std::int64_t, int> lane_of;
      std::vector<int> member_lane(members.size(), -1);
      for (std::size_t i = 0; i < members.size(); ++i) {
        const std::int64_t raw = members[i].req.source;
        const std::int64_t s = raw < 0 ? n / 2 : raw;
        if (s >= n) {
          members[i].response =
              error_response(members[i].id, api::status::bad_request,
                             "source vertex out of range");
          continue;
        }
        const auto [it, fresh] =
            lane_of.try_emplace(s, static_cast<int>(lane_sources.size()));
        if (fresh) lane_sources.push_back(s);
        member_lane[i] = it->second;
      }

      bfs::msbfs_result res;
      if (!lane_sources.empty()) {
        bfs::msbfs_options mo;
        mo.ex.threads = opt_.threads_per_query;
        mo.ex.pool = pool;
        mo.ex.rec = rec_;
        res = pin.graph->visit([&](const auto& cg) {
          using VId = typename std::decay_t<decltype(cg)>::vertex_type;
          std::vector<VId> srcs;
          srcs.reserve(lane_sources.size());
          for (const std::int64_t s : lane_sources) {
            srcs.push_back(static_cast<VId>(s));
          }
          return bfs::msbfs(cg, std::span<const VId>(srcs), mo);
        });
      }
      span.value("lanes", static_cast<double>(lane_sources.size()));
      span.value("epoch", static_cast<double>(pin.epoch));

      // Demux: each member reads its lane. Levels are bit-identical to a
      // per-request seq_bfs (the MSBFS invariant), so the response only
      // differs from the uncoalesced path in its variant string.
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (member_lane[i] < 0) continue;  // already answered above
        const int lane = member_lane[i];
        api::bfs_response r;
        r.variant = "MSBFS-coalesced";
        r.source = lane_sources[static_cast<std::size_t>(lane)];
        r.num_levels = res.num_levels[static_cast<std::size_t>(lane)];
        r.reached =
            static_cast<std::int64_t>(res.reached[static_cast<std::size_t>(
                lane)]);
        r.num_vertices = n;
        const auto lv = res.lane_levels(lane);
        bool bad_target = false;
        for (const std::int64_t t : members[i].req.targets) {
          if (t < 0 || t >= n) {
            bad_target = true;
            break;
          }
          r.target_levels.push_back(lv[static_cast<std::size_t>(t)]);
        }
        if (bad_target) {
          members[i].response =
              error_response(members[i].id, api::status::bad_request,
                             "target vertex out of range");
          continue;
        }
        members[i].response =
            ok_response(members[i].id, api::to_json(r), pin.epoch);
      }
    } catch (const not_found_error& e) {
      span.value("error", 1.0);
      for (auto& m : members) {
        if (m.response.empty()) {
          m.response = error_response(m.id, api::status::not_found, e.what());
        }
      }
    } catch (const micg::check_error& e) {
      span.value("error", 1.0);
      for (auto& m : members) {
        if (m.response.empty()) {
          m.response =
              error_response(m.id, api::status::bad_request, e.what());
        }
      }
    } catch (const std::exception& e) {
      span.value("error", 1.0);
      for (auto& m : members) {
        if (m.response.empty()) {
          m.response = error_response(m.id, api::status::internal, e.what());
        }
      }
    }
  }
  release(adm.slot);
}

std::string service::handle(const request_envelope& req) {
  if (req.op == "ping") {
    return ok_response(req.id, api::json(api::json_object{}));
  }
  if (req.op == "list") {
    api::json_array graphs;
    for (const auto& name : store_.names()) {
      const auto vg = store_.find(name);
      if (vg == nullptr) continue;
      const versioned_graph::pin pin = vg->snapshot();
      graphs.emplace_back(api::json_object{
          {"name", api::json(name)},
          {"epoch", api::json(pin.epoch)},
          {"layout", api::json(graph::layout_name(pin.graph->layout()))},
          {"num_vertices", api::json(pin.graph->num_vertices())},
          {"num_edges", api::json(pin.graph->num_edges())},
          {"pending",
           api::json(static_cast<std::int64_t>(vg->pending_ops()))}});
    }
    return ok_response(
        req.id,
        api::json(api::json_object{{"graphs", api::json(std::move(graphs))}}));
  }
  if (req.op == "shutdown") {
    {
      const std::lock_guard<std::mutex> lock(amu_);
      shutdown_requested_ = true;
      shutting_down_ = true;
      acv_.notify_all();
    }
    return ok_response(req.id, api::json(api::json_object{}));
  }

  // Belt-and-suspenders for the parse-time rejection: an envelope built
  // in-process could still carry a negative deadline, and admit() would
  // refuse it with a throw this path cannot turn into a response.
  if (req.deadline_ms < 0) {
    return error_response(req.id, api::status::bad_request,
                          "deadline_ms must be >= 0");
  }

  if (coalescer_ != nullptr && req.op == "bfs") {
    // Coalesced path: parse before joining a batch so a malformed
    // request fails fast without holding a lane, then hand the request
    // to the batch former (admission happens once per batch, inside
    // run_coalesced_batch).
    if (req.graph.empty()) {
      return error_response(req.id, api::status::bad_request,
                            "op 'bfs' needs a graph name");
    }
    try {
      api::bfs_request breq = api::bfs_request_from_json(req.params);
      return coalescer_->submit(req.graph, std::move(breq), req.id,
                                req.deadline_ms);
    } catch (const micg::check_error& e) {
      return error_response(req.id, api::status::bad_request, e.what());
    } catch (const std::exception& e) {
      return error_response(req.id, api::status::internal, e.what());
    }
  }

  const admit_result adm = admit(req.deadline_ms);
  if (rec_ != nullptr) {
    rec_->get_counter("serve.requests").inc(0);
    if (adm.st == api::status::overloaded) rec_->get_counter("serve.shed").inc(0);
    if (adm.st == api::status::deadline_exceeded) {
      rec_->get_counter("serve.deadline_expired").inc(0);
    }
  }
  if (adm.st != api::status::ok) {
    return error_response(req.id, adm.st,
                          adm.st == api::status::overloaded
                              ? "admission queue full, retry later"
                              : adm.st == api::status::deadline_exceeded
                                    ? "request waited past its deadline"
                                    : "server is shutting down");
  }

  rt::thread_pool* pool =
      pools_[static_cast<std::size_t>(adm.slot)].get();
  std::string response;
  {
    // Per-request span: name carries kernel + graph, values carry the
    // epoch served and the admission wait — the shape docs/serving.md
    // documents for the micg.metrics.v1 stream of a serving process.
    obs::span span;
    if (rec_ != nullptr) {
      span = rec_->start_span(
          "serve." + req.op + (req.graph.empty() ? "" : "/" + req.graph));
      span.value("wait_ms", adm.wait_seconds * 1e3);
    }
    try {
      api::json wrapped = execute(req, pool);
      // execute() returns {"epoch": ..., "result": ...} for graph ops and
      // a bare result object for graph-free ops (sleep).
      std::int64_t epoch = -1;
      api::json result;
      if (const api::json* e = wrapped.find("epoch")) {
        epoch = e->as_int();
        result = wrapped.at("result");
      } else {
        result = std::move(wrapped);
      }
      if (rec_ != nullptr && epoch >= 0) {
        span.value("epoch", static_cast<double>(epoch));
      }
      response = ok_response(req.id, std::move(result), epoch);
    } catch (const not_found_error& e) {
      span.value("error", 1.0);
      response = error_response(req.id, api::status::not_found, e.what());
    } catch (const micg::check_error& e) {
      span.value("error", 1.0);
      response = error_response(req.id, api::status::bad_request, e.what());
    } catch (const std::exception& e) {
      span.value("error", 1.0);
      response = error_response(req.id, api::status::internal, e.what());
    }
  }
  release(adm.slot);
  return response;
}

std::string service::handle_line(const std::string& line) {
  request_envelope req;
  try {
    req = parse_request(line);
  } catch (const micg::check_error& e) {
    return error_response("", api::status::bad_request, e.what());
  } catch (const std::exception& e) {
    return error_response("", api::status::internal, e.what());
  }
  return handle(req);
}

void service::serve_session(std::istream& in, std::ostream& out) {
  std::string line;
  while (true) {
    const frame_status fs = read_frame(in, line, opt_.max_frame_bytes);
    if (fs == frame_status::eof || fs == frame_status::io_error) return;
    if (fs == frame_status::too_large) {
      // The stream is mid-line; framing is lost, so answer once and close.
      out << error_response("", api::status::too_large,
                            "request line exceeds the frame size limit")
          << "\n";
      out.flush();
      return;
    }
    if (line.empty()) continue;  // blank lines are interactive noise
    out << handle_line(line) << "\n";
    out.flush();
    if (!out.good()) return;  // peer went away mid-response
    if (shutdown_requested()) return;  // let the transport tear down
  }
}

}  // namespace micg::serve
