#include "micg/serve/service.hpp"

#include <chrono>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

#include "micg/support/assert.hpp"
#include "micg/support/timer.hpp"

namespace micg::serve {

namespace {

/// Parse the {"edges": [[u,v], ...]} payload of insert/erase.
std::vector<std::pair<std::int64_t, std::int64_t>> parse_edges(
    const api::json& params) {
  MICG_CHECK(params.is_object(), "insert/erase need an {\"edges\": ...} param");
  const api::json& edges = params.at("edges");
  std::vector<std::pair<std::int64_t, std::int64_t>> out;
  out.reserve(edges.as_array().size());
  for (const api::json& e : edges.as_array()) {
    MICG_CHECK(e.is_array() && e.as_array().size() == 2,
               "each edge must be a [u, v] pair");
    out.emplace_back(e.as_array()[0].as_int(), e.as_array()[1].as_int());
  }
  MICG_CHECK(!out.empty(), "edges must be non-empty");
  return out;
}

}  // namespace

service::service(graph_store& store, service_options opt, obs::recorder* rec)
    : store_(store), opt_(opt), rec_(rec) {
  MICG_CHECK(opt_.max_inflight >= 1, "max_inflight must be >= 1");
  MICG_CHECK(opt_.max_waiting >= 0, "max_waiting must be >= 0");
  MICG_CHECK(opt_.threads_per_query >= 1, "threads_per_query must be >= 1");
  MICG_CHECK(opt_.max_frame_bytes >= 64, "max_frame_bytes must be >= 64");
  pools_.resize(static_cast<std::size_t>(opt_.max_inflight));
  free_slots_.reserve(static_cast<std::size_t>(opt_.max_inflight));
  for (int i = opt_.max_inflight - 1; i >= 0; --i) free_slots_.push_back(i);
}

service::~service() {
  begin_shutdown();
  drain();
}

service::admit_result service::admit(std::int64_t deadline_ms) {
  micg::stopwatch sw;
  std::unique_lock<std::mutex> lock(amu_);
  if (shutting_down_) return {api::status::shutting_down, -1, 0.0};
  const auto can_run = [&] { return inflight_ < opt_.max_inflight; };
  if (!can_run()) {
    if (waiting_ >= opt_.max_waiting) {
      return {api::status::overloaded, -1, 0.0};
    }
    ++waiting_;
    const std::int64_t budget =
        deadline_ms > 0 ? deadline_ms : opt_.default_deadline_ms;
    bool ready = true;
    if (budget > 0) {
      ready = acv_.wait_for(lock, std::chrono::milliseconds(budget),
                            [&] { return shutting_down_ || can_run(); });
    } else {
      acv_.wait(lock, [&] { return shutting_down_ || can_run(); });
    }
    --waiting_;
    acv_.notify_all();  // a drain() may be waiting on `waiting_` to drop
    if (shutting_down_) {
      return {api::status::shutting_down, -1, sw.seconds()};
    }
    if (!ready || !can_run()) {
      return {api::status::deadline_exceeded, -1, sw.seconds()};
    }
  }
  ++inflight_;
  const int slot = free_slots_.back();
  free_slots_.pop_back();
  auto& pool = pools_[static_cast<std::size_t>(slot)];
  if (pool == nullptr && opt_.threads_per_query > 1) {
    pool = std::make_unique<rt::thread_pool>(opt_.threads_per_query);
  }
  return {api::status::ok, slot, sw.seconds()};
}

void service::release(int slot) {
  const std::lock_guard<std::mutex> lock(amu_);
  free_slots_.push_back(slot);
  --inflight_;
  acv_.notify_all();
}

void service::begin_shutdown() {
  const std::lock_guard<std::mutex> lock(amu_);
  shutting_down_ = true;
  acv_.notify_all();
}

bool service::shutting_down() const {
  const std::lock_guard<std::mutex> lock(amu_);
  return shutting_down_;
}

bool service::shutdown_requested() const {
  const std::lock_guard<std::mutex> lock(amu_);
  return shutdown_requested_;
}

void service::drain() {
  std::unique_lock<std::mutex> lock(amu_);
  acv_.wait(lock, [&] { return inflight_ == 0 && waiting_ == 0; });
}

api::json service::execute(const request_envelope& req,
                           rt::thread_pool* pool) {
  if (req.op == "sleep") {
    // Diagnostic: occupy an admission slot for a bounded time. This is
    // how the admission tests (and operators probing shedding behavior)
    // create load with a known shape.
    std::int64_t ms = 0;
    if (const api::json* f = req.params.find("ms")) ms = f->as_int();
    MICG_CHECK(ms >= 0 && ms <= 60000, "sleep ms must be in [0, 60000]");
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return api::json(api::json_object{{"slept_ms", api::json(ms)}});
  }

  MICG_CHECK(!req.graph.empty(), "op '" + req.op + "' needs a graph name");
  const std::shared_ptr<versioned_graph> vg = store_.find(req.graph);
  if (vg == nullptr) {
    throw not_found_error("unknown graph: " + req.graph);
  }

  if (api::is_query_op(req.op)) {
    const versioned_graph::pin pin = vg->snapshot();
    api::run_context ctx;
    ctx.pool = pool;
    ctx.max_threads = opt_.threads_per_query;
    ctx.rec = rec_;
    ctx.snapshot_epoch = pin.epoch;
    api::json result = api::dispatch_query(*pin.graph, req.op, req.params, ctx);
    return api::json(api::json_object{{"epoch", api::json(pin.epoch)},
                                      {"result", std::move(result)}});
  }

  if (req.op == "insert" || req.op == "erase") {
    const auto edges = parse_edges(req.params);
    for (const auto& [u, v] : edges) {
      if (req.op == "insert") {
        vg->insert(u, v);
      } else {
        vg->erase(u, v);
      }
    }
    bool compacted = false;
    if (opt_.compact_every > 0 &&
        vg->pending_ops() >= static_cast<std::size_t>(opt_.compact_every)) {
      vg->compact();
      compacted = true;
    }
    return api::json(api::json_object{
        {"epoch", api::json(vg->epoch())},
        {"result",
         api::json(api::json_object{
             {"buffered", api::json(static_cast<std::int64_t>(edges.size()))},
             {"pending",
              api::json(static_cast<std::int64_t>(vg->pending_ops()))},
             {"compacted", api::json(compacted)}})}});
  }

  if (req.op == "compact") {
    const std::int64_t epoch = vg->compact();
    const versioned_graph::pin pin = vg->snapshot();
    return api::json(api::json_object{
        {"epoch", api::json(epoch)},
        {"result",
         api::json(api::json_object{
             {"layout",
              api::json(graph::layout_name(pin.graph->layout()))},
             {"num_vertices", api::json(pin.graph->num_vertices())},
             {"num_edges", api::json(pin.graph->num_edges())},
             {"pending",
              api::json(static_cast<std::int64_t>(vg->pending_ops()))}})}});
  }

  throw not_found_error("unknown op: " + req.op);
}

std::string service::handle(const request_envelope& req) {
  if (req.op == "ping") {
    return ok_response(req.id, api::json(api::json_object{}));
  }
  if (req.op == "list") {
    api::json_array graphs;
    for (const auto& name : store_.names()) {
      const auto vg = store_.find(name);
      if (vg == nullptr) continue;
      const versioned_graph::pin pin = vg->snapshot();
      graphs.emplace_back(api::json_object{
          {"name", api::json(name)},
          {"epoch", api::json(pin.epoch)},
          {"layout", api::json(graph::layout_name(pin.graph->layout()))},
          {"num_vertices", api::json(pin.graph->num_vertices())},
          {"num_edges", api::json(pin.graph->num_edges())},
          {"pending",
           api::json(static_cast<std::int64_t>(vg->pending_ops()))}});
    }
    return ok_response(
        req.id,
        api::json(api::json_object{{"graphs", api::json(std::move(graphs))}}));
  }
  if (req.op == "shutdown") {
    {
      const std::lock_guard<std::mutex> lock(amu_);
      shutdown_requested_ = true;
      shutting_down_ = true;
      acv_.notify_all();
    }
    return ok_response(req.id, api::json(api::json_object{}));
  }

  const admit_result adm = admit(req.deadline_ms);
  if (rec_ != nullptr) {
    rec_->get_counter("serve.requests").add(0);
    if (adm.st == api::status::overloaded) rec_->get_counter("serve.shed").add(0);
    if (adm.st == api::status::deadline_exceeded) {
      rec_->get_counter("serve.deadline_expired").add(0);
    }
  }
  if (adm.st != api::status::ok) {
    return error_response(req.id, adm.st,
                          adm.st == api::status::overloaded
                              ? "admission queue full, retry later"
                              : adm.st == api::status::deadline_exceeded
                                    ? "request waited past its deadline"
                                    : "server is shutting down");
  }

  rt::thread_pool* pool =
      pools_[static_cast<std::size_t>(adm.slot)].get();
  std::string response;
  {
    // Per-request span: name carries kernel + graph, values carry the
    // epoch served and the admission wait — the shape docs/serving.md
    // documents for the micg.metrics.v1 stream of a serving process.
    obs::span span;
    if (rec_ != nullptr) {
      span = rec_->start_span(
          "serve." + req.op + (req.graph.empty() ? "" : "/" + req.graph));
      span.value("wait_ms", adm.wait_seconds * 1e3);
    }
    try {
      api::json wrapped = execute(req, pool);
      // execute() returns {"epoch": ..., "result": ...} for graph ops and
      // a bare result object for graph-free ops (sleep).
      std::int64_t epoch = -1;
      api::json result;
      if (const api::json* e = wrapped.find("epoch")) {
        epoch = e->as_int();
        result = wrapped.at("result");
      } else {
        result = std::move(wrapped);
      }
      if (rec_ != nullptr && epoch >= 0) {
        span.value("epoch", static_cast<double>(epoch));
      }
      response = ok_response(req.id, std::move(result), epoch);
    } catch (const not_found_error& e) {
      span.value("error", 1.0);
      response = error_response(req.id, api::status::not_found, e.what());
    } catch (const micg::check_error& e) {
      span.value("error", 1.0);
      response = error_response(req.id, api::status::bad_request, e.what());
    } catch (const std::exception& e) {
      span.value("error", 1.0);
      response = error_response(req.id, api::status::internal, e.what());
    }
  }
  release(adm.slot);
  return response;
}

std::string service::handle_line(const std::string& line) {
  request_envelope req;
  try {
    req = parse_request(line);
  } catch (const micg::check_error& e) {
    return error_response("", api::status::bad_request, e.what());
  } catch (const std::exception& e) {
    return error_response("", api::status::internal, e.what());
  }
  return handle(req);
}

void service::serve_session(std::istream& in, std::ostream& out) {
  std::string line;
  while (true) {
    const frame_status fs = read_frame(in, line, opt_.max_frame_bytes);
    if (fs == frame_status::eof || fs == frame_status::io_error) return;
    if (fs == frame_status::too_large) {
      // The stream is mid-line; framing is lost, so answer once and close.
      out << error_response("", api::status::too_large,
                            "request line exceeds the frame size limit")
          << "\n";
      out.flush();
      return;
    }
    if (line.empty()) continue;  // blank lines are interactive noise
    out << handle_line(line) << "\n";
    out.flush();
    if (!out.good()) return;  // peer went away mid-response
    if (shutdown_requested()) return;  // let the transport tear down
  }
}

}  // namespace micg::serve
