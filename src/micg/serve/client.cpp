#include "micg/serve/client.hpp"

#include <utility>

#include "micg/serve/protocol.hpp"
#include "micg/support/assert.hpp"

namespace micg::serve {

api::json make_request(const std::string& op, const std::string& graph,
                       api::json params, std::int64_t deadline_ms,
                       const std::string& id) {
  // Reject rather than drop: silently omitting a negative deadline would
  // turn a caller's typo (`--deadline-ms -5`) into "wait forever".
  MICG_CHECK(deadline_ms >= 0, "deadline_ms must be >= 0");
  api::json_object obj;
  if (!id.empty()) obj.emplace_back("id", api::json(id));
  obj.emplace_back("op", api::json(op));
  if (!graph.empty()) obj.emplace_back("graph", api::json(graph));
  if (deadline_ms > 0) obj.emplace_back("deadline_ms", api::json(deadline_ms));
  if (!params.is_null()) obj.emplace_back("params", std::move(params));
  return api::json(std::move(obj));
}

client::client(const std::string& address)
    : stream_(std::make_unique<socket_stream>(dial(parse_endpoint(address)))) {
}

std::string client::call_line(const std::string& line) {
  *stream_ << line << "\n";
  stream_->flush();
  MICG_CHECK(stream_->good(), "connection lost while sending request");
  std::string response;
  const frame_status fs = read_frame(*stream_, response);
  MICG_CHECK(fs == frame_status::ok,
             "connection closed before a response arrived");
  return response;
}

api::json client::call(const api::json& request) {
  return api::json::parse(call_line(request.dump()));
}

api::json client::call(const std::string& op, const std::string& graph,
                       api::json params, std::int64_t deadline_ms,
                       const std::string& id) {
  return call(make_request(op, graph, std::move(params), deadline_ms, id));
}

}  // namespace micg::serve
