#include "micg/serve/coalesce.hpp"

#include <utility>

#include "micg/serve/protocol.hpp"
#include "micg/support/assert.hpp"

namespace micg::serve {

coalescer::coalescer(coalesce_options opt, batch_runner run)
    : opt_(opt), run_(std::move(run)) {
  MICG_CHECK(opt_.window_ms >= 0, "coalesce window_ms must be >= 0");
  MICG_CHECK(opt_.max_lanes >= 1 && opt_.max_lanes <= bfs::msbfs_max_lanes,
             "coalesce max_lanes must be in [1, 64]");
  MICG_CHECK(run_ != nullptr, "coalescer needs a batch runner");
}

std::string coalescer::submit(const std::string& graph, api::bfs_request req,
                              std::string id, std::int64_t deadline_ms) {
  std::shared_ptr<batch> b;
  std::size_t index = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = forming_.find(graph);
    // A full batch whose leader has not woken to seal it yet cannot take
    // another lane — the arrival opens a replacement batch and leads it.
    const bool leader =
        it == forming_.end() ||
        it->second->members.size() >=
            static_cast<std::size_t>(opt_.max_lanes);
    if (leader) {
      b = std::make_shared<batch>();
      b->deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(opt_.window_ms);
      b->members.reserve(static_cast<std::size_t>(opt_.max_lanes));
      forming_[graph] = b;
    } else {
      b = it->second;
    }
    index = b->members.size();
    b->members.push_back(
        {std::move(req), std::move(id), deadline_ms, std::string()});

    if (!leader) {
      if (b->members.size() >=
          static_cast<std::size_t>(opt_.max_lanes)) {
        b->cv.notify_all();  // full house: wake the leader to seal now
      }
      b->cv.wait(lock, [&] { return b->done; });
      return std::move(b->members[index].response);
    }

    // Leader: wait out the window (or a full batch), then seal by
    // removing the forming entry — no later arrival can join once the
    // map no longer points at this batch.
    b->cv.wait_until(lock, b->deadline, [&] {
      return b->members.size() >= static_cast<std::size_t>(opt_.max_lanes);
    });
    // Seal only our own entry — a replacement batch may own the slot if
    // we filled up before waking.
    const auto self = forming_.find(graph);
    if (self != forming_.end() && self->second == b) forming_.erase(self);
  }

  // Run outside the lock: admission may block and the traversal is long.
  try {
    run_(graph, b->members);
  } catch (const std::exception& e) {
    for (auto& m : b->members) {
      if (m.response.empty()) {
        m.response = error_response(m.id, api::status::internal, e.what());
      }
    }
  } catch (...) {
    for (auto& m : b->members) {
      if (m.response.empty()) {
        m.response = error_response(m.id, api::status::internal,
                                    "coalesced batch failed");
      }
    }
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    b->done = true;
  }
  b->cv.notify_all();
  return std::move(b->members[0].response);
}

}  // namespace micg::serve
