// micg.serve.v1 wire protocol: newline-delimited JSON over a byte stream.
//
// Each request is one line (one JSON object, terminated by '\n'); each
// response is one line. The full grammar, op catalog and error semantics
// are documented in docs/serving.md; this header is the single
// implementation of framing and envelope (de)serialization, shared by the
// server, the `micg query` client and the fault-injection tests.
//
// Robustness contract (satellite of PR 3's untrusted-input discipline):
// any byte sequence a client sends produces either a structured error
// response or a closed connection — never a crash, hang, or torn frame.
// Framing faults that poison the stream (oversized line, I/O error) close
// the connection; faults confined to one line (malformed JSON, wrong
// types) produce a `bad_request` response and the session continues.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "micg/api/api.hpp"
#include "micg/api/json.hpp"

namespace micg::serve {

/// Default per-line size cap. A request is a handful of scalars and maybe
/// a source list; 1 MiB is generous and bounds per-connection memory.
inline constexpr std::size_t default_max_frame = std::size_t{1} << 20;

/// Outcome of reading one frame.
enum class frame_status {
  ok,         ///< `line` holds one complete frame (newline stripped)
  eof,        ///< clean end of stream, no partial data
  too_large,  ///< line exceeded the cap — the stream is poisoned, close it
  io_error,   ///< underlying read failed (badbit) — close it
};

/// Read one '\n'-terminated frame into `line`. A final unterminated line
/// at EOF counts as a frame (interactive `echo -n` clients). CR before
/// the newline is stripped so `nc -C` style clients work.
frame_status read_frame(std::istream& in, std::string& line,
                        std::size_t max_bytes = default_max_frame);

/// The parsed request envelope. `params` keeps whatever JSON value the
/// client sent (object or null); per-op parsing happens in micg::api.
struct request_envelope {
  std::string id;      ///< client echo tag; empty = none sent
  std::string op;      ///< required
  std::string graph;   ///< graph name; required for graph-addressed ops
  std::int64_t deadline_ms = 0;  ///< admission-wait budget; 0 = server default
  api::json params;    ///< op parameters (object) or null
};

/// Parse one frame into an envelope. Throws micg::check_error (mapped to
/// bad_request by the caller) on malformed JSON, a non-object document,
/// a missing/non-string "op", or wrong-typed envelope fields. Unknown
/// envelope fields are ignored for forward compatibility.
request_envelope parse_request(const std::string& line);

/// Assemble a response line (no trailing newline). Shape:
///   {"id":..., "status":"ok", "epoch":..., "result":{...}}
///   {"id":..., "status":"bad_request", "error":"..."}
/// `id` is echoed only when the request carried one; `epoch` only when
/// `epoch >= 0` (graph-addressed ops report the snapshot they answered
/// from).
std::string make_response(const std::string& id, api::status st,
                          api::json result, const std::string& error_message,
                          std::int64_t epoch = -1);

/// Convenience: success with a result payload.
std::string ok_response(const std::string& id, api::json result,
                        std::int64_t epoch = -1);

/// Convenience: failure with a message.
std::string error_response(const std::string& id, api::status st,
                           const std::string& message);

}  // namespace micg::serve
