// The socket front end of `micg serve`: accept loop, one session thread
// per connection, graceful teardown.
//
// Shutdown protocol (docs/serving.md):
//  1. request_shutdown() — from a signal handler or the `shutdown` op —
//     half-closes the listening socket, which pops the accept loop;
//  2. the service stops admitting (`shutting_down` responses) while
//     in-flight requests keep running;
//  3. idle sessions are read-shutdown so their blocking reads return EOF;
//     a session mid-request finishes it, writes the response, then sees
//     EOF on its next read;
//  4. run() joins every session thread and drains the admission gate
//     before returning — no query is abandoned mid-flight.
#pragma once

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "micg/obs/obs.hpp"
#include "micg/serve/net.hpp"
#include "micg/serve/service.hpp"
#include "micg/serve/store.hpp"

namespace micg::serve {

struct server_options {
  std::string listen;  ///< address spec (see net.hpp grammar)
  int backlog = 64;
  service_options svc;
};

class server {
 public:
  /// `store` and `rec` must outlive the server.
  server(graph_store& store, server_options opt, obs::recorder* rec = nullptr);
  ~server();

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Bind + listen (throws micg::check_error on failure). After this the
  /// endpoint is accepting; run() starts serving it.
  void bind_and_listen();

  /// Serve until shutdown; returns with every session joined and the
  /// admission gate drained.
  void run();

  /// Initiate graceful shutdown. Async-signal-safe: one ::shutdown(2)
  /// call on the listening fd.
  void request_shutdown();

  [[nodiscard]] const endpoint& where() const { return ep_; }
  [[nodiscard]] service& svc() { return svc_; }

 private:
  void session_main(int fd);

  graph_store& store_;
  server_options opt_;
  endpoint ep_;
  service svc_;
  std::atomic<int> listen_fd_{-1};

  std::mutex smu_;
  std::set<int> session_fds_;
  std::vector<std::thread> threads_;
};

}  // namespace micg::serve
