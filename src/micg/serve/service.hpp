// The transport-independent request engine of `micg serve`.
//
// A service owns the admission gate and the op dispatch; the socket
// server (server.hpp), the in-process tests and the fault-injection
// tests all drive the same handle_line()/serve_session() entry points,
// so every protocol behavior is testable without a socket.
//
// Admission control: at most `max_inflight` requests execute at once;
// up to `max_waiting` more queue on a condition variable. Beyond that
// the service sheds gracefully — an immediate `overloaded` response,
// the error code clients are told to back off on. A queued request that
// waits past its deadline gets `deadline_exceeded` (the deadline bounds
// *queueing*, not kernel execution, which is not preemptible). Control
// ops (ping/list/shutdown) bypass the gate so the server stays
// observable under full load.
//
// Concurrency: each admission slot owns a private rt::thread_pool —
// the process-global pool forbids concurrent multi-thread regions by
// design (rt/thread_pool.hpp), so concurrent queries each run on their
// slot's pool, capped at `threads_per_query` workers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "micg/api/api.hpp"
#include "micg/bfs/landmark.hpp"
#include "micg/graph/stats.hpp"
#include "micg/obs/obs.hpp"
#include "micg/rt/thread_pool.hpp"
#include "micg/serve/coalesce.hpp"
#include "micg/serve/protocol.hpp"
#include "micg/serve/store.hpp"
#include "micg/support/assert.hpp"
#include "micg/tune/tune.hpp"

namespace micg::serve {

/// Raised for names the server does not know (graph, op); mapped to the
/// `not_found` status instead of the generic `bad_request` that plain
/// micg::check_error becomes.
class not_found_error : public micg::check_error {
 public:
  using micg::check_error::check_error;
};

struct service_options {
  int max_inflight = 8;        ///< concurrently executing requests
  int max_waiting = 32;        ///< queued beyond that -> overloaded
  int threads_per_query = 4;   ///< per-request parallelism cap
  std::size_t max_frame_bytes = default_max_frame;
  std::int64_t default_deadline_ms = 0;  ///< queue-wait cap; 0 = unbounded
  /// Auto-compact a graph once this many net mutations are buffered
  /// (the mutating request pays for the rebuild); 0 = manual compaction
  /// via the `compact` op only.
  std::int64_t compact_every = 0;
  /// Formation window for coalescing concurrent `bfs` requests into one
  /// MSBFS batch (serve/coalesce.hpp); 0 = coalescing off, every bfs
  /// request runs its own traversal.
  std::int64_t coalesce_window_ms = 0;
  /// Lanes per coalesced batch, [1, 64].
  int coalesce_lanes = 64;
  /// Pivots of the per-graph landmark index answering `approx_dist`,
  /// [1, 64]. Indexes are built lazily on first use, keyed by snapshot
  /// epoch, and refreshed when a compaction bumps the epoch.
  int landmark_count = 16;
  /// Server-wide auto-tuning mode ("fixed" / "auto" / "calibrate"; "" =
  /// $MICG_TUNE, then fixed). Under a non-fixed mode the service probes
  /// each graph once per snapshot epoch (at construction for resident
  /// graphs, refreshed when compaction bumps the epoch) and hands the
  /// cached knob plan to every query; a request's own "tune" field still
  /// wins for that request. CLI flag --tune on `micg serve`.
  std::string tune;
};

class service {
 public:
  /// `store` and `rec` (optional metrics sink) must outlive the service.
  service(graph_store& store, service_options opt,
          obs::recorder* rec = nullptr);
  ~service();

  service(const service&) = delete;
  service& operator=(const service&) = delete;

  /// Handle one well-framed request line; returns the response line
  /// (no trailing newline). Never throws on client input.
  std::string handle_line(const std::string& line);

  /// Run one session: frame requests from `in`, write responses to
  /// `out`. Returns when the peer disconnects, the stream faults, or a
  /// poisoned frame (too_large / io_error) forces a close.
  void serve_session(std::istream& in, std::ostream& out);

  /// Stop admitting work (new requests get `shutting_down`) and wake
  /// every queued waiter. In-flight requests keep running.
  void begin_shutdown();
  [[nodiscard]] bool shutting_down() const;

  /// Block until no request is executing or queued (call after
  /// begin_shutdown() to drain).
  void drain();

  /// True once some request asked for server shutdown (`shutdown` op);
  /// the transport layer polls this to leave its accept loop.
  [[nodiscard]] bool shutdown_requested() const;

  [[nodiscard]] const service_options& options() const { return opt_; }

 private:
  /// RAII admission slot; index < 0 means not admitted.
  struct admit_result {
    api::status st = api::status::ok;
    int slot = -1;
    double wait_seconds = 0.0;
  };
  admit_result admit(std::int64_t deadline_ms);
  void release(int slot);

  api::json execute(const request_envelope& req, rt::thread_pool* pool);
  std::string handle(const request_envelope& req);

  /// Leader-side body of one sealed coalesced batch: one admission slot,
  /// one pinned snapshot, one msbfs, per-member demux.
  void run_coalesced_batch(const std::string& graph,
                           std::vector<coalesce_member>& members);

  /// The landmark index of `name` at the pin's epoch (build or rebuild
  /// when missing/stale). `refresh_landmarks` rebuilds after a compaction
  /// but only if an index already exists (no spontaneous builds).
  std::shared_ptr<const bfs::landmark_index> landmark_for(
      const std::string& name, const versioned_graph::pin& pin,
      rt::thread_pool* pool);
  void refresh_landmarks(const std::string& name, versioned_graph& vg,
                         rt::thread_pool* pool);

  /// The knob plan of `name` at the pin's epoch (compute on miss/epoch
  /// change — one stats sweep + the pure picker). Only called when
  /// tune_mode_ is not fixed.
  std::shared_ptr<const tune::knob_plan> plan_for(
      const std::string& name, const versioned_graph::pin& pin);

  graph_store& store_;
  const service_options opt_;
  obs::recorder* rec_;
  std::unique_ptr<coalescer> coalescer_;  ///< null when coalescing is off

  /// Epoch-keyed landmark cache: one immutable index per graph, valid
  /// for exactly the epoch it was built against.
  struct landmark_entry {
    std::int64_t epoch = -1;
    std::shared_ptr<const bfs::landmark_index> idx;
  };
  std::mutex lmu_;
  std::map<std::string, landmark_entry> landmarks_;

  /// Resolved service-wide tune mode (options().tune / $MICG_TUNE).
  tune::tune_mode tune_mode_ = tune::tune_mode::fixed;
  /// Per-snapshot graph probes feeding the knob picker, shared with any
  /// future stats consumers (keyed by graph name, epoch-checked).
  graph::stats_cache stats_;
  /// Epoch-keyed knob-plan cache, same discipline as landmarks_.
  struct plan_entry {
    std::int64_t epoch = -1;
    std::shared_ptr<const tune::knob_plan> plan;
  };
  std::mutex pmu_;
  std::map<std::string, plan_entry> plans_;

  mutable std::mutex amu_;
  std::condition_variable acv_;
  int inflight_ = 0;
  int waiting_ = 0;
  bool shutting_down_ = false;
  bool shutdown_requested_ = false;
  std::vector<int> free_slots_;
  /// One pool per admission slot, created on first use (slot workers
  /// spawn lazily inside thread_pool).
  std::vector<std::unique_ptr<rt::thread_pool>> pools_;
};

}  // namespace micg::serve
