// Trace extraction: runs (or replays) the real algorithms on the real
// graphs and converts their structure into work traces for the machine
// model. The algorithmic quantities (visit sets, conflict counts, BFS
// frontiers, degrees) are genuine; only per-operation costs are modeled
// constants (calibrated once, documented in EXPERIMENTS.md).
#pragma once

#include "micg/graph/csr.hpp"
#include "micg/model/trace.hpp"

namespace micg::model {

/// Cost of processing one vertex and one incident edge in a kernel.
struct kernel_costs {
  double cpu_per_edge = 0.0;
  double cpu_per_vertex = 0.0;
  double stall_per_edge = 0.0;
  double stall_per_vertex = 0.0;
  double miss_per_edge = 0.0;    ///< expected cache misses per neighbor access
  double miss_per_vertex = 0.0;
};

/// Calibrated cost sets (constants justified in EXPERIMENTS.md §Model).
kernel_costs coloring_costs(bool shuffled);
kernel_costs conflict_detect_costs(bool shuffled);
kernel_costs irregular_costs(int iterations);
kernel_costs bfs_costs(bool shuffled = false);

/// Iterative-coloring trace: two parallel steps (tentative + detect) per
/// round. Round sizes come from running the real iterative algorithm;
/// conflict-set degrees are sampled evenly from the graph. Defined for
/// every shipped layout.
template <micg::graph::CsrGraph G>
work_trace coloring_trace(const G& g, bool shuffled);

/// Irregular-kernel trace: one parallel step over all vertices with the
/// FLOP count scaled by `iterations` and memory traffic independent of it
/// (neighbor states stay cached across the inner loop, §III-B).
template <micg::graph::CsrGraph G>
work_trace irregular_trace(const G& g, int iterations);

/// Frontier data structure of the modeled BFS (per §IV-C).
enum class bfs_frontier {
  block,  ///< block-accessed shared queue
  tls,    ///< SNAP thread-local queues (always locked)
  bag,    ///< Leiserson–Schardl bag (always relaxed)
};

struct bfs_trace_options {
  bfs_frontier frontier = bfs_frontier::block;
  bool relaxed = true;  ///< block queue only
};

/// Layered-BFS trace: one parallel step per level with the real frontier
/// (vertices and degrees from a sequential traversal), plus
/// variant-specific insertion/merge costs.
template <micg::graph::CsrGraph G>
work_trace bfs_trace(const G& g, typename G::vertex_type source,
                     const bfs_trace_options& opt);

}  // namespace micg::model
