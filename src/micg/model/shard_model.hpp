// Analytical model of sharded BSP execution on a multi-socket machine.
//
// A run of R rounds over S shards, in the spirit of the paper's layered
// BFS model (§III-C) extended with the three costs sharding introduces:
//
//   T = sum_r [  max_s(edges_{r,s}) / socket_bw          (compute, bound by
//                                                          the fullest shard
//                                                          streaming from its
//                                                          own socket)
//              + msgs_r * cross_msg_cost / S             (exchange, all S
//                                                          interconnect lanes
//                                                          moving in parallel)
//              + S * shard_barrier_cost ]                (rendezvous, linear
//                                                          in the shard count)
//
// With an aggregated workload (total edges, a cut fraction, a round count)
// the per-round maxima collapse to the imbalance-free averages; the
// edge-balanced partition makes that a good approximation (its per-shard
// spread is bounded by one row). Shards beyond the socket count stop
// adding bandwidth (min(S, sockets) sockets are streaming) but keep
// adding barrier and message cost — the model's sweet spot sits at
// S == sockets, which is what bench/fig_shard.cpp plots against the
// measured series.
#pragma once

#include <cstdint>

#include "micg/model/machine.hpp"

namespace micg::model {

/// One sharded workload, aggregated.
struct shard_workload {
  /// Directed adjacency entries the kernel touches per sweep over the
  /// graph (2|E| for BFS expanding every vertex once, per-iteration for
  /// pagerank).
  double directed_edges = 0.0;
  /// Fraction of directed edges whose endpoints live on different shards
  /// (each becomes one message per sweep).
  double cut_fraction = 0.0;
  /// BSP rounds (BFS levels, pagerank iterations).
  double rounds = 1.0;
  /// Barriers per round (the kernels use two: publish and counts).
  double barriers_per_round = 2.0;
};

/// Predicted time (abstract units) of the workload on `m` with S shards.
double shard_time(const machine_config& m, const shard_workload& w,
                  int shards);

/// Predicted speedup of S shards over the 1-shard prediction of the same
/// workload (the model curve fig_shard.cpp draws).
double shard_model_speedup(const machine_config& m, const shard_workload& w,
                           int shards);

}  // namespace micg::model
