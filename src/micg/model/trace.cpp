#include "micg/model/trace.hpp"

namespace micg::model {

double work_trace::total_cpu() const {
  double total = 0.0;
  for (const auto& s : steps) {
    total += s.serial_cpu_ops;
    for (const auto& it : s.items) total += it.cpu_ops;
  }
  return total;
}

double work_trace::total_stall() const {
  double total = 0.0;
  for (const auto& s : steps) {
    for (const auto& it : s.items) total += it.stall_ops;
  }
  return total;
}

double work_trace::total_mem() const {
  double total = 0.0;
  for (const auto& s : steps) {
    for (const auto& it : s.items) total += it.mem_ops;
  }
  return total;
}

std::size_t work_trace::total_items() const {
  std::size_t total = 0;
  for (const auto& s : steps) total += s.items.size();
  return total;
}

}  // namespace micg::model
