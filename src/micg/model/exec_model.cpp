#include "micg/model/exec_model.hpp"

#include <algorithm>

#include "micg/support/assert.hpp"

namespace micg::model {

double step_time(std::span<const thread_load> loads,
                 const machine_config& m, double solo_overlap,
                 double mem_scale) {
  const int t = static_cast<int>(loads.size());
  if (t == 0) return 0.0;
  const int cores_used = std::min(t, m.cores);

  double worst_core = 0.0;
  double chip_mem_ops = 0.0;
  for (int c = 0; c < cores_used; ++c) {
    double pipeline = 0.0;
    double mem = 0.0;
    double stall = 0.0;
    double chain = 0.0;
    int k = 0;
    for (int th = c; th < t; th += m.cores) {
      const auto& ld = loads[static_cast<std::size_t>(th)];
      ++k;
      const double ld_mem = ld.mem_ops * mem_scale;
      pipeline += ld.cpu_ops * m.cpu_per_op + ld.overhead;
      mem += ld_mem;
      stall += ld.stall_ops;
      const double exposed =
          (ld.stall_ops * m.cpu_per_op + ld_mem * m.mem_latency) *
          (1.0 - solo_overlap);
      chain = std::max(chain,
                       ld.cpu_ops * m.cpu_per_op + ld.overhead + exposed);
    }
    if (k == 0) continue;
    chip_mem_ops += mem;
    const double mem_stall =
        mem * m.mem_latency / static_cast<double>(std::min(k, m.mlp));
    const double fp_stall = stall * m.cpu_per_op / static_cast<double>(k);
    worst_core = std::max(
        {worst_core, pipeline, mem_stall, fp_stall, chain});
  }
  // Chip-wide bandwidth floor.
  const double bw_floor = chip_mem_ops / m.chip_mem_ops_per_unit;
  return std::max(worst_core, bw_floor);
}

double trace_time(const work_trace& trace, const exec_options& opt,
                  const machine_config& m) {
  MICG_CHECK(opt.threads >= 1, "need at least one thread");
  double total = 0.0;
  const double barrier =
      m.barrier_per_thread * static_cast<double>(opt.threads);
  const int cores_used = std::min(opt.threads, m.cores);
  const double mem_scale =
      m.cores > 1
          ? 1.0 - trace.cache_gain * static_cast<double>(cores_used - 1) /
                      static_cast<double>(m.cores - 1)
          : 1.0;
  for (const auto& step : trace.steps) {
    total += step.serial_cpu_ops * m.cpu_per_op;
    if (step.items.empty()) continue;
    const auto loads =
        assign_step(step, opt.policy, opt.threads, opt.chunk, m);
    total += step_time(loads, m, opt.solo_overlap, mem_scale);
    if (opt.threads > 1) total += barrier;
  }
  return total;
}

double baseline_time(const work_trace& trace, const machine_config& m) {
  exec_options base;
  base.policy = rt::backend::omp_static;  // cheapest 1-thread schedule
  base.threads = 1;
  return trace_time(trace, base, m);
}

double model_speedup(const work_trace& trace, const exec_options& opt,
                     const machine_config& m) {
  return model_speedup_vs(trace, opt, m, baseline_time(trace, m));
}

double model_speedup_vs(const work_trace& trace, const exec_options& opt,
                        const machine_config& m, double baseline) {
  const double tt = trace_time(trace, opt, m);
  return tt > 0.0 ? baseline / tt : 0.0;
}

sweep_series model_sweep(const work_trace& trace, rt::backend policy,
                         std::int64_t chunk,
                         std::span<const int> thread_counts,
                         const machine_config& m, double solo_overlap) {
  sweep_series s;
  for (int t : thread_counts) {
    exec_options opt;
    opt.policy = policy;
    opt.threads = t;
    opt.chunk = chunk;
    opt.solo_overlap = solo_overlap;
    s.threads.push_back(t);
    s.speedup.push_back(model_speedup(trace, opt, m));
  }
  return s;
}

std::vector<int> paper_thread_grid(int max_threads) {
  std::vector<int> grid;
  for (int t = 1; t <= max_threads; t += 10) grid.push_back(t);
  return grid;
}

}  // namespace micg::model
