// The paper's analytical performance model of layered BFS (§III-C).
//
// L synchronized steps; x_l vertices at level l; t threads; blocks of b
// vertices. Under the paper's five simplifying assumptions, the time of
// level l is
//
//   c(l) = x_l                    if x_l <  b   (one thread does it all)
//   c(l) = ceil(x_l/(t*b)) * b    otherwise     (rounds of full blocks)
//
// and the achievable speedup is sum(x_l) / sum(c(l)).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace micg::model {

/// c(l) for a single level.
double bfs_level_cost(std::size_t frontier, int threads, int block);

/// The model's achievable speedup for a whole traversal.
double bfs_model_speedup(std::span<const std::size_t> frontier_sizes,
                         int threads, int block);

/// Convenience: the model curve over a thread grid.
std::vector<double> bfs_model_curve(
    std::span<const std::size_t> frontier_sizes,
    std::span<const int> thread_counts, int block);

/// Batched (multi-source) variant. A lane batch charges each level once on
/// the *union* frontier x_l (the distinct vertices some lane discovers at
/// depth l), in the same t*b-block rounds as the single-source model, while
/// the useful work is the sum of the per-source traversals the batch
/// replaces (`source_work`, i.e. total vertices settled across all lanes).
/// The ratio is the model's throughput speedup of one batched traversal
/// over `lanes` repeated single-source traversals on the same machine.
double msbfs_model_speedup(std::span<const std::size_t> union_frontier_sizes,
                           double source_work, int threads, int block);

/// Convenience: the batched model curve over a thread grid.
std::vector<double> msbfs_model_curve(
    std::span<const std::size_t> union_frontier_sizes, double source_work,
    std::span<const int> thread_counts, int block);

}  // namespace micg::model
