#include "micg/model/machine.hpp"

namespace micg::model {

machine_config machine_config::knf() {
  machine_config m;
  m.name = "KNF";
  m.cores = 31;  // 32 on chip, one reserved by the system (§V-A)
  m.smt = 4;
  m.cpu_per_op = 1.0;
  // KNF: simple in-order cores at ~1.2GHz against GDDR5 — long latency in
  // core cycles, good aggregate bandwidth.
  m.mem_latency = 40.0;
  m.mlp = 4;
  m.chip_mem_ops_per_unit = 6.0;
  m.socket_mem_ops_per_unit = 6.0;
  m.chunk_claim = 30.0;
  m.contention_per_thread = 1.0;
  m.task_spawn = 90.0;
  m.steal_cost = 150.0;
  m.barrier_per_thread = 25.0;
  m.atomic_rmw = 12.0;
  m.thread_jitter = 0.35;
  return m;
}

machine_config machine_config::host_xeon() {
  machine_config m;
  m.name = "HostXeon";
  m.cores = 12;  // dual X5680
  m.smt = 2;     // HyperThreading
  // Out-of-order cores at 3.3GHz: relatively shorter exposed latency (the
  // OoO window hides part of it even for one thread) and fast atomics.
  m.cpu_per_op = 0.35;
  m.mem_latency = 9.0;
  m.mlp = 4;
  m.chip_mem_ops_per_unit = 3.0;
  m.socket_mem_ops_per_unit = 3.0;
  m.chunk_claim = 8.0;
  m.contention_per_thread = 0.6;
  m.task_spawn = 25.0;
  m.steal_cost = 40.0;
  m.barrier_per_thread = 3.0;
  m.atomic_rmw = 4.0;
  m.thread_jitter = 0.15;
  return m;
}

machine_config machine_config::multi_socket() {
  machine_config m = host_xeon();
  m.name = "MultiSocket";
  m.sockets = 4;
  m.cores = 32;  // 8 per socket
  // Each socket owns its memory controllers; one socket streaming alone
  // sees roughly the single-chip figure.
  m.socket_mem_ops_per_unit = 3.0;
  m.chip_mem_ops_per_unit = 3.0;  // what one unsharded run can reach
  // Interconnect: a message is a handful of cache lines' worth of
  // bandwidth-amortized transfer, far below a full remote-latency stall.
  m.cross_msg_cost = 2.5;
  // Cross-socket rendezvous per round and shard: orders of magnitude above
  // an on-chip fork-join, the term that caps fine-grained sharding.
  m.shard_barrier_cost = 600.0;
  return m;
}

machine_config machine_config::knc() {
  machine_config m = knf();
  m.name = "KNC";
  m.cores = 57;
  m.chip_mem_ops_per_unit *= 1.8;  // GDDR5 at production clocks
  m.socket_mem_ops_per_unit = m.chip_mem_ops_per_unit;
  return m;
}

}  // namespace micg::model
