// Machine descriptions for the performance model.
//
// The paper's numbers come from two machines we cannot buy anymore:
//  * the Knights Ferry prototype — 31 usable in-order cores, 4-way SMT
//    (124 hardware threads), GDDR5, bidirectional ring;
//  * the host — dual Xeon X5680 (12 cores, 2-way HyperThreading).
//
// machine_config captures the handful of parameters the paper's observed
// behaviour actually depends on: core/SMT counts, the latency-vs-overlap
// structure of the memory system (SMT latency hiding is the paper's
// central finding), and per-runtime scheduling overheads. Values are in
// abstract time units (1.0 == one simple ALU op); only ratios matter for
// speedup curves.
#pragma once

#include <string>

namespace micg::model {

struct machine_config {
  std::string name;

  // --- topology ----------------------------------------------------------
  int cores = 31;  ///< physical cores available to the application
  int smt = 4;     ///< hardware threads per core

  // --- execution ---------------------------------------------------------
  /// Time units per arithmetic op. Threads sharing a core serialize their
  /// arithmetic on the core's (in-order) pipeline.
  double cpu_per_op = 1.0;
  /// Time units a memory access that misses cache stalls the issuing
  /// thread. For an in-order core a solo thread cannot hide this.
  double mem_latency = 40.0;
  /// Outstanding misses a single core can overlap across its SMT threads
  /// (memory-level parallelism). min(active threads, mlp) misses proceed
  /// concurrently — this term is what makes "the multi-threaded
  /// architecture ... hide latencies" (abstract).
  int mlp = 4;
  /// Chip-wide memory throughput: memory ops retired per time unit when
  /// every core is streaming (bounds aggregate, not per-core, traffic).
  double chip_mem_ops_per_unit = 6.0;

  // --- runtime overheads (per scheduling event, in time units) -----------
  /// Claiming one chunk from a shared counter (dynamic / guided / simple
  /// partitioner). Grows with contention; see contention_per_thread.
  double chunk_claim = 30.0;
  /// Extra claim cost per participating thread (cache-line ping-pong on
  /// the shared cursor).
  double contention_per_thread = 1.0;
  /// Creating + retiring one work-stealing task (allocation, deque
  /// traffic). Charged per leaf task for cilk_ws and TBB partitioners.
  double task_spawn = 90.0;
  /// One successful steal (CAS + cold deque line + task migration).
  double steal_cost = 150.0;
  /// Barrier / parallel-region fork-join latency per participating thread
  /// (centralized barrier: linear in t).
  double barrier_per_thread = 8.0;
  /// One contended atomic RMW (fetch_add on a shared queue cursor).
  double atomic_rmw = 12.0;
  /// Per-thread execution-speed noise (SMT scheduling jitter, TLB/cache
  /// interference). Statically partitioned schedules eat it as makespan;
  /// dynamic claiming absorbs it — the reason "the less expensive dynamic
  /// scheduling policies performs better" at scale (§V-B).
  double thread_jitter = 0.15;

  // --- multi-socket topology (sharded execution, docs/sharding.md) -------
  /// Sockets (== natural shard count). 1 for the single-chip presets;
  /// shard counts above `sockets` keep paying barrier and message costs
  /// without unlocking more bandwidth.
  int sockets = 1;
  /// Memory throughput of one socket (memory ops per time unit). Shards
  /// stream from their own socket's controllers, so aggregate bandwidth
  /// scales with min(shards, sockets) — the term that makes sharding pay.
  double socket_mem_ops_per_unit = 6.0;
  /// Time units to move one cross-shard message (a frontier id or a halo
  /// contribution) over the socket interconnect, amortized at the
  /// bulk-exchange rate rather than per-load latency.
  double cross_msg_cost = 2.0;
  /// Per-shard cost of one BSP round barrier (the rendezvous is
  /// centralized, so it grows linearly in the shard count).
  double shard_barrier_cost = 400.0;

  /// The Knights Ferry prototype the paper measures (§V-A).
  static machine_config knf();
  /// The dual-Xeon host (§V-A), for Figure 4(d).
  static machine_config host_xeon();
  /// A Knights-Corner-like projection (the paper's §VI: "the final
  /// commercial design ... will feature more than 50 cores"): 57 cores,
  /// same SMT, faster GDDR5.
  static machine_config knc();
  /// A four-socket host in the paper's §VI spirit (MIC cards/sockets
  /// cooperating on one graph): per-socket Xeon-class memory, a QPI-like
  /// interconnect for the halo exchange, expensive cross-socket barriers.
  static machine_config multi_socket();
};

}  // namespace micg::model
