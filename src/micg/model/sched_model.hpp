// Scheduling simulators: how each runtime policy distributes one parallel
// step's work items over t logical threads, and what it charges for doing
// so. Mirrors the real schedulers in micg::rt policy-for-policy.
#pragma once

#include <cstdint>
#include <vector>

#include "micg/model/machine.hpp"
#include "micg/model/trace.hpp"
#include "micg/rt/exec.hpp"

namespace micg::model {

/// Work accumulated on one logical thread after scheduling a step.
struct thread_load {
  double cpu_ops = 0.0;
  double stall_ops = 0.0;
  double mem_ops = 0.0;
  double overhead = 0.0;  ///< scheduling time units (claims, spawns, steals)
};

/// Scalar solo-execution estimate for one item (what a list scheduler
/// "sees" when placing work): pipeline + exposed stalls + exposed misses.
double item_solo_cost(const work_item& it, const machine_config& m);

/// Multiplier on per-item pipeline work charged by the runtime itself.
/// OpenMP's loop scheduling is nearly free; the work-stealing runtimes pay
/// bookkeeping that grows with the thread count — the paper's empirical
/// finding in Figure 1 (OpenMP > TBB > Cilk beyond ~51 threads), which the
/// paper attributes to the runtime engines rather than the algorithm.
/// Calibrated in machine.cpp's presets; see EXPERIMENTS.md.
double runtime_tax(rt::backend policy, int threads);

/// Per-task cost (time units) charged by the work-stealing runtimes for
/// one leaf task, growing with the thread count (steal probes / deque
/// traffic on the ring interconnect). Calibrated against Figures 1-3; see
/// EXPERIMENTS.md.
double ws_task_cost(rt::backend policy, int threads,
                    const machine_config& m);

/// Simulate scheduling `step` under `policy` with `threads` logical
/// threads and the given chunk/grain. Returns one load per thread.
std::vector<thread_load> assign_step(const parallel_step& step,
                                     rt::backend policy, int threads,
                                     std::int64_t chunk,
                                     const machine_config& m);

}  // namespace micg::model
