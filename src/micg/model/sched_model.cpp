#include "micg/model/sched_model.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>

#include "micg/support/assert.hpp"

namespace micg::model {

double item_solo_cost(const work_item& it, const machine_config& m) {
  return it.cpu_ops * m.cpu_per_op + it.stall_ops * m.cpu_per_op +
         it.mem_ops * m.mem_latency;
}

double runtime_tax(rt::backend policy, int threads) {
  // Nearly all runtime inefficiency is modeled as *per-task* cost growing
  // with the thread count (ws_task_cost below) so that it amortizes with
  // chunk work, exactly as the paper observes ("when the computation
  // volumes slightly increased, the three programming model yield similar
  // performance", SVI). The only multiplicative term left is guided's
  // slightly costlier CAS claim loop.
  if (policy == rt::backend::omp_guided) {
    return 1.0 + 0.0012 * static_cast<double>(threads);
  }
  return 1.0;
}

double ws_task_cost(rt::backend policy, int threads,
                    const machine_config& m) {
  // Work-stealing runtimes pay per-task bookkeeping that grows with the
  // number of threads (steal probes and deque traffic on the ring bus).
  // Coefficients calibrated against Figure 1/2 magnitudes at the paper's
  // chunk sizes (Cilk grain 100: peak ~32 natural / ~98 shuffled;
  // TBB-simple chunk 40: ~45 / ~121); scaled by the machine's steal cost
  // so the Xeon host pays proportionally less.
  const double scale = m.steal_cost / 150.0;
  const auto t = static_cast<double>(threads);
  double coef = 0.0;
  switch (policy) {
    case rt::backend::cilk_tid:
    case rt::backend::cilk_holder:
      coef = 240.0;
      break;
    case rt::backend::tbb_simple:
      coef = 48.0;
      break;
    case rt::backend::tbb_auto:
      coef = 260.0;  // split-on-steal cascades under heavy stealing
      break;
    case rt::backend::tbb_affinity:
      coef = 200.0;  // placement replay is useless on shrinking visit sets
      break;
    default:
      return 0.0;
  }
  return m.task_spawn + coef * t * scale;
}

namespace {

struct chunk_ref {
  std::size_t begin;
  std::size_t end;
};

/// Accumulate items [c.begin, c.end) onto thread `th`, applying the
/// runtime tax to pipeline work and charging `claim_cost` of overhead.
void charge(const parallel_step& step, const chunk_ref& c, thread_load& th,
            double tax, double claim_cost) {
  for (std::size_t i = c.begin; i < c.end; ++i) {
    const auto& it = step.items[i];
    th.cpu_ops += it.cpu_ops * tax;
    th.stall_ops += it.stall_ops;
    th.mem_ops += it.mem_ops;
  }
  th.overhead += claim_cost;
}

double chunk_cost(const parallel_step& step, const chunk_ref& c,
                  const machine_config& m) {
  double total = 0.0;
  for (std::size_t i = c.begin; i < c.end; ++i) {
    total += item_solo_cost(step.items[i], m);
  }
  return total;
}

/// First-come-first-served list scheduling over prebuilt chunks: each
/// chunk goes to the thread with the earliest finish time — exactly what a
/// shared-cursor loop does, up to claim-order ties.
///
/// Core-aware: a thread sharing its core with k SMT siblings progresses
/// roughly k times slower through pipeline-bound work, so it claims fewer
/// chunks. This self-balancing across unevenly populated cores is exactly
/// why the paper finds dynamic scheduling superior to static once SMT is
/// in play (§V-B).
std::vector<thread_load> fcfs(const parallel_step& step,
                              const std::vector<chunk_ref>& chunks,
                              int threads, double tax, double claim_cost,
                              const machine_config& m) {
  std::vector<thread_load> loads(static_cast<std::size_t>(threads));
  // A thread sharing a core with k-1 siblings slows down on the
  // pipeline-serialized part of its work only; its stall/miss time is
  // hidden by the siblings. Estimate the split from the step's aggregate
  // composition.
  double step_pipe = 0.0;
  double step_total = 0.0;
  for (const auto& it : step.items) {
    step_pipe += it.cpu_ops * m.cpu_per_op;
    step_total += item_solo_cost(it, m);
  }
  const double pipe_frac = step_total > 0.0 ? step_pipe / step_total : 1.0;
  std::vector<double> slowdown(static_cast<std::size_t>(threads), 1.0);
  for (int t = 0; t < threads; ++t) {
    // Threads on core (t % cores); count of siblings sharing it.
    int siblings = 0;
    for (int u = t % m.cores; u < threads; u += m.cores) ++siblings;
    const auto k = static_cast<double>(siblings > 0 ? siblings : 1);
    slowdown[static_cast<std::size_t>(t)] =
        k * pipe_frac + (1.0 - pipe_frac);
  }
  // min-heap of (finish_time, thread).
  using entry = std::pair<double, int>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> ready;
  for (int t = 0; t < threads; ++t) ready.emplace(0.0, t);
  for (const auto& c : chunks) {
    auto [finish, t] = ready.top();
    ready.pop();
    charge(step, c, loads[static_cast<std::size_t>(t)], tax, claim_cost);
    ready.emplace(finish + (claim_cost + chunk_cost(step, c, m) * tax) *
                               slowdown[static_cast<std::size_t>(t)],
                  t);
  }
  return loads;
}

/// Deterministic per-thread speed noise in [1, 1+jitter]; statically
/// partitioned policies inflate each thread's load by it (a slow thread
/// stretches the whole step), FCFS policies absorb it by claiming less.
void apply_jitter(std::vector<thread_load>& loads,
                  const machine_config& m, double factor = 1.0) {
  if (loads.size() <= 1) return;  // no interference to model solo
  // Interference grows with chip occupancy: scarcely populated chips see
  // little cross-thread noise.
  const double occupancy =
      std::min(1.0, static_cast<double>(loads.size()) /
                        static_cast<double>(m.cores));
  for (std::size_t t = 0; t < loads.size(); ++t) {
    // SplitMix64-style mix of the thread id -> [0, 1).
    std::uint64_t z = (t + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    const double u =
        static_cast<double>(z >> 11) * 0x1.0p-53;
    const double f = 1.0 + m.thread_jitter * factor * occupancy * u;
    loads[t].cpu_ops *= f;
    loads[t].stall_ops *= f;
    loads[t].mem_ops *= f;
  }
}

std::vector<chunk_ref> fixed_chunks(std::size_t n, std::int64_t chunk) {
  const auto step = static_cast<std::size_t>(chunk > 0 ? chunk : 1);
  std::vector<chunk_ref> chunks;
  chunks.reserve(n / step + 1);
  for (std::size_t b = 0; b < n; b += step) {
    chunks.push_back({b, std::min(b + step, n)});
  }
  return chunks;
}

}  // namespace

std::vector<thread_load> assign_step(const parallel_step& step,
                                     rt::backend policy, int threads,
                                     std::int64_t chunk,
                                     const machine_config& m) {
  MICG_CHECK(threads >= 1, "need at least one thread");
  const std::size_t n = step.items.size();
  const double tax = runtime_tax(policy, threads);
  std::vector<thread_load> loads(static_cast<std::size_t>(threads));
  if (n == 0) return loads;

  const double claim = m.chunk_claim +
                       m.contention_per_thread * static_cast<double>(threads);

  switch (policy) {
    case rt::backend::omp_static: {
      // Contiguous even ranges; no per-chunk cost.
      const std::size_t base = n / static_cast<std::size_t>(threads);
      const std::size_t rem = n % static_cast<std::size_t>(threads);
      std::size_t begin = 0;
      for (int t = 0; t < threads; ++t) {
        const std::size_t len =
            base + (static_cast<std::size_t>(t) < rem ? 1 : 0);
        charge(step, {begin, begin + len},
               loads[static_cast<std::size_t>(t)], tax, 0.0);
        begin += len;
      }
      apply_jitter(loads, m);
      return loads;
    }
    case rt::backend::omp_static_chunked: {
      const auto chunks = fixed_chunks(n, chunk);
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        charge(step, chunks[c],
               loads[c % static_cast<std::size_t>(threads)], tax, 0.0);
      }
      apply_jitter(loads, m);
      return loads;
    }
    case rt::backend::omp_dynamic:
      return fcfs(step, fixed_chunks(n, chunk), threads, tax, claim, m);
    case rt::backend::omp_guided: {
      // Geometrically decreasing chunks, floored at `chunk`.
      std::vector<chunk_ref> chunks;
      std::size_t begin = 0;
      while (begin < n) {
        std::size_t size = (n - begin) / static_cast<std::size_t>(threads);
        size = std::max(size, static_cast<std::size_t>(chunk > 0 ? chunk : 1));
        size = std::min(size, n - begin);
        chunks.push_back({begin, begin + size});
        begin += size;
      }
      // Guided's claim does a CAS loop: slightly costlier than fetch_add.
      return fcfs(step, chunks, threads, tax, 1.5 * claim, m);
    }
    case rt::backend::cilk_tid:
    case rt::backend::cilk_holder: {
      // Recursive halving to grain-size leaves; each leaf is one task.
      std::int64_t grain = chunk;
      if (grain <= 0) {
        grain = rt::cilk_default_grain(static_cast<std::int64_t>(n),
                                       threads);
      }
      const double task_cost =
          threads > 1 ? ws_task_cost(policy, threads, m) : m.task_spawn;
      return fcfs(step, fixed_chunks(n, grain), threads, tax, task_cost, m);
    }
    case rt::backend::tbb_simple: {
      // Splits to grain like a simple partitioner; every leaf is a task.
      // A non-positive chunk means "auto": ~8 leaves per worker.
      std::int64_t grain = chunk;
      if (grain <= 0) {
        grain = rt::cilk_default_grain(static_cast<std::int64_t>(n),
                                       threads);
      }
      const double task_cost =
          threads > 1 ? ws_task_cost(policy, threads, m) : m.task_spawn;
      return fcfs(step, fixed_chunks(n, grain), threads, tax, task_cost, m);
    }
    case rt::backend::tbb_auto: {
      // Coarse subranges (a few per worker), split further only on steal:
      // chunk size ~ n / (4t), never below the grain. The coarse initial
      // split is egalitarian per *worker* (not per core), so unlike a
      // fine-grained FCFS loop it cannot rebalance across unevenly
      // crowded cores or absorb stragglers — modeled as round-robin
      // placement plus amplified jitter exposure.
      const auto coarse = static_cast<std::int64_t>(
          std::max<std::size_t>(1, n / (4 * static_cast<std::size_t>(
                                                threads))));
      const std::int64_t eff = std::max<std::int64_t>(chunk, coarse);
      const auto chunks = fixed_chunks(n, eff);
      const double task_cost =
          threads > 1 ? ws_task_cost(policy, threads, m) : m.task_spawn;
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        charge(step, chunks[c],
               loads[c % static_cast<std::size_t>(threads)], tax,
               task_cost);
      }
      apply_jitter(loads, m, 2.2);
      return loads;
    }
    case rt::backend::tbb_affinity: {
      // Placement replay: round-robin of ~4 chunks per worker, cheap
      // claims but no adaptivity (like static-chunked with task costs).
      const auto per = static_cast<std::size_t>(
          std::max<std::size_t>(1, n / (4 * static_cast<std::size_t>(
                                                threads))));
      const auto chunks = fixed_chunks(n, static_cast<std::int64_t>(per));
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        auto& th = loads[c % static_cast<std::size_t>(threads)];
        charge(step, chunks[c], th, tax,
               threads > 1 ? ws_task_cost(policy, threads, m)
                           : m.task_spawn);
      }
      // Replayed placement is even more rigid than auto's initial split
      // ("consistently slower than the auto", SV-B).
      apply_jitter(loads, m, 2.8);
      return loads;
    }
  }
  return loads;
}

}  // namespace micg::model
