// Execution model: turns per-thread loads into time on a described
// machine. This is where SMT latency hiding — the paper's central
// observation — lives.
//
// Threads are placed round-robin over cores (thread i -> core i % cores,
// matching how the MIC runtime spreads software threads). For one core
// running k threads, four lower bounds compete and the largest wins:
//
//   pipeline   sum of issue ops + scheduling overhead: SMT threads share
//              the in-order core's issue width, so arithmetic serializes.
//   mem stall  sum of miss latencies / min(k, MLP): co-resident threads
//              overlap misses up to the core's MLP ("hiding latencies in
//              irregular applications", abstract).
//   fp stall   sum of dependency stalls / k: another thread can always
//              issue into a dependency bubble.
//   chain      the slowest single thread's fully-exposed solo time: a
//              thread can never beat its own dependence chain. On an
//              out-of-order host a fraction `solo_overlap` of the chain's
//              stalls is hidden even solo.
//
// The step then takes max over cores, is floored by the chip-wide memory
// bandwidth, and pays a barrier linear in t.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "micg/model/machine.hpp"
#include "micg/model/sched_model.hpp"
#include "micg/model/trace.hpp"
#include "micg/rt/exec.hpp"

namespace micg::model {

/// Fraction of a solo thread's exposed stall time hidden by out-of-order
/// execution; 0 for the in-order KNF cores, ~0.6 for the Xeon host.
/// Separated from machine_config to keep that struct paper-facing; set via
/// exec_options.
struct exec_options {
  rt::backend policy = rt::backend::omp_dynamic;
  int threads = 1;
  std::int64_t chunk = 64;
  double solo_overlap = 0.0;
};

/// Time of one scheduled step on the machine (excludes barrier).
/// `mem_scale` multiplies every load's miss count (the aggregate-cache
/// factor derived from work_trace::cache_gain).
double step_time(std::span<const thread_load> loads,
                 const machine_config& m, double solo_overlap,
                 double mem_scale = 1.0);

/// Time of a whole trace: sum of scheduled step times, barriers, and
/// serial sections.
double trace_time(const work_trace& trace, const exec_options& opt,
                  const machine_config& m);

/// 1-thread time of `trace` under the cheapest schedule — the paper's
/// "configuration that performs the fastest on 1 thread" baseline (§V-A).
double baseline_time(const work_trace& trace, const machine_config& m);

/// One point of a speedup curve: baseline_time(trace) / trace_time(opt).
double model_speedup(const work_trace& trace, const exec_options& opt,
                     const machine_config& m);

/// Speedup against an explicit baseline time. Use when several algorithm
/// variants share one figure: the paper normalizes them all by the single
/// fastest 1-thread configuration, so a costlier variant's curve sits
/// lower even at equal scaling.
double model_speedup_vs(const work_trace& trace, const exec_options& opt,
                        const machine_config& m, double baseline);

/// Sweep a thread list (the paper uses 1, 11, 21, ..., 121).
struct sweep_series {
  std::vector<int> threads;
  std::vector<double> speedup;
};
sweep_series model_sweep(const work_trace& trace, rt::backend policy,
                         std::int64_t chunk,
                         std::span<const int> thread_counts,
                         const machine_config& m,
                         double solo_overlap = 0.0);

/// The paper's thread grid: 1, 11, 21, ..., up to `max_threads`.
std::vector<int> paper_thread_grid(int max_threads);

}  // namespace micg::model
