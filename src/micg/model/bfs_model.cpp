#include "micg/model/bfs_model.hpp"

#include "micg/support/assert.hpp"

namespace micg::model {

double bfs_level_cost(std::size_t frontier, int threads, int block) {
  MICG_CHECK(threads >= 1, "need at least one thread");
  MICG_CHECK(block >= 1, "block must be positive");
  const auto x = static_cast<double>(frontier);
  const auto b = static_cast<double>(block);
  if (x < b) return x;
  const double rounds =
      static_cast<double>((frontier + static_cast<std::size_t>(threads) *
                                          static_cast<std::size_t>(block) -
                           1) /
                          (static_cast<std::size_t>(threads) *
                           static_cast<std::size_t>(block)));
  return rounds * b;
}

double bfs_model_speedup(std::span<const std::size_t> frontier_sizes,
                         int threads, int block) {
  double work = 0.0;
  double cost = 0.0;
  for (std::size_t x : frontier_sizes) {
    work += static_cast<double>(x);
    cost += bfs_level_cost(x, threads, block);
  }
  return cost > 0.0 ? work / cost : 0.0;
}

std::vector<double> bfs_model_curve(
    std::span<const std::size_t> frontier_sizes,
    std::span<const int> thread_counts, int block) {
  std::vector<double> curve;
  curve.reserve(thread_counts.size());
  for (int t : thread_counts) {
    curve.push_back(bfs_model_speedup(frontier_sizes, t, block));
  }
  return curve;
}

double msbfs_model_speedup(std::span<const std::size_t> union_frontier_sizes,
                           double source_work, int threads, int block) {
  MICG_CHECK(source_work >= 0.0, "source_work must be non-negative");
  double cost = 0.0;
  for (std::size_t x : union_frontier_sizes) {
    cost += bfs_level_cost(x, threads, block);
  }
  return cost > 0.0 ? source_work / cost : 0.0;
}

std::vector<double> msbfs_model_curve(
    std::span<const std::size_t> union_frontier_sizes, double source_work,
    std::span<const int> thread_counts, int block) {
  std::vector<double> curve;
  curve.reserve(thread_counts.size());
  for (int t : thread_counts) {
    curve.push_back(
        msbfs_model_speedup(union_frontier_sizes, source_work, t, block));
  }
  return curve;
}

}  // namespace micg::model
