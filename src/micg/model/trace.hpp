// Work traces: the interface between real algorithm executions and the
// machine model.
//
// A trace is a sequence of bulk-synchronous parallel steps (the rounds of
// the iterative coloring, the levels of layered BFS, the single sweep of
// the irregular kernel). Each step carries one work item per task (vertex),
// with the item's arithmetic and memory demand derived from the *real*
// graph (degrees, visit sets, frontiers) — only the hardware timing is
// modeled, never the algorithmic structure.
#pragma once

#include <cstdint>
#include <vector>

namespace micg::model {

struct work_item {
  double cpu_ops = 0.0;    ///< issue-slot (pipeline) operations
  double stall_ops = 0.0;  ///< dependency-stall cycles a solo thread exposes
                           ///< (FP chains); hidden by co-resident SMT threads
  double mem_ops = 0.0;    ///< cache-missing memory accesses
};

struct parallel_step {
  std::vector<work_item> items;
  /// Serial work between the previous step and this one (queue swaps,
  /// conflict-list resizing, bag merges), charged to one thread.
  double serial_cpu_ops = 0.0;
};

struct work_trace {
  std::vector<parallel_step> steps;

  /// Aggregate-cache scaling: spreading the run over c cores multiplies
  /// miss counts by (1 - cache_gain * (c-1)/(cores-1)) because each core
  /// contributes private cache to the shared working set. This is the
  /// mechanism behind the paper's super-linear Figure 2 speedups (153 on
  /// 121 threads): the 1-thread baseline misses far more often than each
  /// of 124 threads on 31 caches. Higher for shuffled orders (everything
  /// misses at 1 core; much fits at 31).
  double cache_gain = 0.10;

  /// Sum of all item cpu_ops (serial sections included).
  [[nodiscard]] double total_cpu() const;
  /// Sum of all item stall_ops.
  [[nodiscard]] double total_stall() const;
  /// Sum of all item mem_ops.
  [[nodiscard]] double total_mem() const;
  /// Total number of items across steps.
  [[nodiscard]] std::size_t total_items() const;
};

}  // namespace micg::model
