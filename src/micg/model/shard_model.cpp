#include "micg/model/shard_model.hpp"

#include <algorithm>

#include "micg/support/assert.hpp"

namespace micg::model {

double shard_time(const machine_config& m, const shard_workload& w,
                  int shards) {
  MICG_CHECK(shards >= 1, "shard count must be positive");
  MICG_CHECK(w.directed_edges >= 0.0 && w.rounds >= 0.0 &&
                 w.cut_fraction >= 0.0 && w.cut_fraction <= 1.0,
             "malformed shard workload");
  const double s = static_cast<double>(shards);

  // Compute: every socket streams its shard's slice; sockets beyond the
  // shard count idle, shards beyond the socket count share controllers.
  const double streaming =
      static_cast<double>(std::min(shards, m.sockets));
  const double bw = m.socket_mem_ops_per_unit * streaming;
  const double compute = w.directed_edges * m.cpu_per_op / bw;

  // Exchange: one message per cut edge per sweep; a single shard sends
  // nothing. All shard-pair lanes move concurrently.
  const double msgs = shards > 1 ? w.directed_edges * w.cut_fraction : 0.0;
  const double exchange = msgs * m.cross_msg_cost / s;

  // Rendezvous: centralized, linear in the shard count, paid per barrier.
  const double barriers =
      w.rounds * w.barriers_per_round * s * m.shard_barrier_cost;

  return compute + exchange + barriers;
}

double shard_model_speedup(const machine_config& m, const shard_workload& w,
                           int shards) {
  const double base = shard_time(m, w, 1);
  const double t = shard_time(m, w, shards);
  return t > 0.0 ? base / t : 1.0;
}

}  // namespace micg::model
