#include "micg/model/tracegen.hpp"

#include <vector>

#include "micg/bfs/seq.hpp"
#include "micg/color/iterative.hpp"
#include "micg/support/assert.hpp"

namespace micg::model {

// ---------------------------------------------------------------------------
// Calibrated kernel costs. One unit == one issue slot of a KNF core; the
// memory latency (machine_config::mem_latency = 40) turns miss counts into
// stall time. Calibration targets (EXPERIMENTS.md): coloring speedup ~72
// at 121 threads on naturally ordered graphs and ~153 on shuffled graphs
// (Figs 1-2); irregular-kernel speedups ~60 (iter=1) declining to ~49
// (iter=10) with the 61->121 plateau (Fig 3).
// ---------------------------------------------------------------------------

kernel_costs coloring_costs(bool shuffled) {
  kernel_costs c;
  c.cpu_per_edge = 6.0;    // load w, load color[w], stamp forbidden, loop
  c.cpu_per_vertex = 25.0; // first-fit scan + color store
  c.stall_per_edge = 1.0;
  c.stall_per_vertex = 2.0;
  // Natural FEM order: most neighbor colors are in cache; shuffling the
  // ids defeats all reuse ("break all the locality", §V-B).
  c.miss_per_edge = shuffled ? 0.62 : 0.17;
  c.miss_per_vertex = shuffled ? 1.0 : 0.3;
  return c;
}

kernel_costs conflict_detect_costs(bool shuffled) {
  // Same traversal, no first-fit scan, early exit on conflict.
  kernel_costs c = coloring_costs(shuffled);
  c.cpu_per_edge = 4.0;
  c.cpu_per_vertex = 8.0;
  return c;
}

kernel_costs irregular_costs(int iterations) {
  MICG_CHECK(iterations >= 1, "need at least one iteration");
  kernel_costs c;
  const auto it = static_cast<double>(iterations);
  // FLOPs scale with the iteration knob; each FP add on the in-order core
  // occupies the pipeline (cpu) and exposes a dependency bubble (stall).
  c.cpu_per_edge = 5.0 * it;
  c.cpu_per_vertex = 12.0 * it;
  c.stall_per_edge = 2.0 * it;
  c.stall_per_vertex = 4.0 * it;
  // Neighbor states are fetched once and stay cached across the inner
  // iteration loop, so memory traffic does not scale with `iterations`.
  c.miss_per_edge = 0.1;
  c.miss_per_vertex = 0.4;
  return c;
}

kernel_costs bfs_costs(bool shuffled) {
  kernel_costs c;
  c.cpu_per_edge = 6.0;     // level test + branch
  c.cpu_per_vertex = 25.0;  // queue pop, sentinel test, bookkeeping
  c.stall_per_edge = 1.0;
  c.stall_per_vertex = 2.0;
  c.miss_per_edge = shuffled ? 0.62 : 0.30;  // level array is touched cold
  c.miss_per_vertex = 0.5;
  return c;
}

namespace {

template <micg::graph::CsrGraph G>
work_item item_for_vertex(const G& g, typename G::vertex_type v,
                          const kernel_costs& c) {
  const auto deg = static_cast<double>(g.degree(v));
  work_item it;
  it.cpu_ops = c.cpu_per_vertex + c.cpu_per_edge * deg;
  it.stall_ops = c.stall_per_vertex + c.stall_per_edge * deg;
  it.mem_ops = c.miss_per_vertex + c.miss_per_edge * deg;
  return it;
}

}  // namespace

template <micg::graph::CsrGraph G>
work_trace coloring_trace(const G& g, bool shuffled) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  const kernel_costs tentative = coloring_costs(shuffled);
  const kernel_costs detect = conflict_detect_costs(shuffled);

  // Real round structure: run the actual iterative algorithm once (the
  // thread count only perturbs conflict counts slightly; 8 is
  // representative of a loaded machine).
  micg::color::iterative_options copt;
  copt.ex.kind = rt::backend::omp_dynamic;
  copt.ex.threads = 8;
  copt.ex.chunk = 64;
  const auto run = micg::color::iterative_color(g, copt);

  work_trace trace;
  trace.cache_gain = shuffled ? 0.40 : 0.10;
  std::size_t visit_size = static_cast<std::size_t>(n);
  for (int round = 0; round < run.rounds; ++round) {
    // Visit vertices: the whole graph in round 0; later rounds use an
    // evenly spaced sample of the real conflict count (degree-
    // representative without recording the exact conflict set).
    std::vector<VId> visit;
    visit.reserve(visit_size);
    if (visit_size == static_cast<std::size_t>(n)) {
      for (VId v = 0; v < n; ++v) visit.push_back(v);
    } else if (visit_size > 0) {
      const std::size_t stride =
          std::max<std::size_t>(1, static_cast<std::size_t>(n) / visit_size);
      for (std::size_t i = 0; i < visit_size; ++i) {
        visit.push_back(static_cast<VId>(
            (i * stride) % static_cast<std::size_t>(n)));
      }
    }

    parallel_step tent;
    parallel_step det;
    tent.items.reserve(visit.size());
    det.items.reserve(visit.size());
    for (VId v : visit) {
      tent.items.push_back(item_for_vertex(g, v, tentative));
      det.items.push_back(item_for_vertex(g, v, detect));
    }
    // Swapping Visit/Conflict arrays and the maxcolor reduce are serial.
    det.serial_cpu_ops = 200.0;
    trace.steps.push_back(std::move(tent));
    trace.steps.push_back(std::move(det));

    visit_size = run.conflicts_per_round[static_cast<std::size_t>(round)];
  }
  return trace;
}

template <micg::graph::CsrGraph G>
work_trace irregular_trace(const G& g, int iterations) {
  using VId = typename G::vertex_type;
  const kernel_costs costs = irregular_costs(iterations);
  work_trace trace;
  trace.cache_gain = 0.10;
  parallel_step step;
  const VId n = g.num_vertices();
  step.items.reserve(static_cast<std::size_t>(n));
  for (VId v = 0; v < n; ++v) {
    step.items.push_back(item_for_vertex(g, v, costs));
  }
  trace.steps.push_back(std::move(step));
  return trace;
}

template <micg::graph::CsrGraph G>
work_trace bfs_trace(const G& g, typename G::vertex_type source,
                     const bfs_trace_options& opt) {
  using VId = typename G::vertex_type;
  const kernel_costs base = bfs_costs();
  const auto ref = micg::bfs::seq_bfs(g, source);

  // Bucket vertices by level (the real frontiers).
  std::vector<std::vector<VId>> levels(
      static_cast<std::size_t>(ref.num_levels));
  for (VId v = 0; v < g.num_vertices(); ++v) {
    const int lv = ref.level[static_cast<std::size_t>(v)];
    if (lv >= 0) levels[static_cast<std::size_t>(lv)].push_back(v);
  }

  work_trace trace;
  trace.cache_gain = 0.10;
  for (std::size_t l = 0; l < levels.size(); ++l) {
    parallel_step step;
    step.items.reserve(levels[l].size());
    for (VId v : levels[l]) {
      work_item it = item_for_vertex(g, v, base);
      const auto deg = static_cast<double>(g.degree(v));
      switch (opt.frontier) {
        case bfs_frontier::block:
          // Discovered vertices pay one queue push; one atomic per block
          // is amortized into cpu_per_vertex. Locked insertion CASes on
          // every unvisited neighbor (~half the edges).
          it.cpu_ops += opt.relaxed ? 1.0 * deg : 15.0 * deg * 0.5;
          break;
        case bfs_frontier::tls:
          // Always locked; cheap local push, but the per-level merge is
          // serial (below).
          it.cpu_ops += 15.0 * deg * 0.5;
          break;
        case bfs_frontier::bag:
          // Pointer-heavy inserts and node allocation; extra misses from
          // chasing pennant nodes ("complex pointer techniques", §IV-C).
          it.cpu_ops += 8.0 * deg;
          it.mem_ops += 0.15 * deg;
          break;
      }
      step.items.push_back(it);
    }
    // Per-level serial work.
    const double next_frontier =
        l + 1 < levels.size() ? static_cast<double>(levels[l + 1].size())
                              : 0.0;
    switch (opt.frontier) {
      case bfs_frontier::block:
        step.serial_cpu_ops = 100.0;  // queue swap + cursor reset
        break;
      case bfs_frontier::tls:
        // SNAP merges local queues into the global queue serially.
        step.serial_cpu_ops = 100.0 + 2.0 * next_frontier;
        break;
      case bfs_frontier::bag:
        step.serial_cpu_ops = 400.0;  // bag unions (cheap but pointerful)
        break;
    }
    trace.steps.push_back(std::move(step));
  }
  return trace;
}

#define MICG_INSTANTIATE(G)                                         \
  template work_trace coloring_trace<G>(const G&, bool);            \
  template work_trace irregular_trace<G>(const G&, int);            \
  template work_trace bfs_trace<G>(const G&, typename G::vertex_type, \
                                   const bfs_trace_options&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::model
