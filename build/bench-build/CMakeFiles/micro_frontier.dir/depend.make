# Empty dependencies file for micro_frontier.
# This may be replaced when dependencies are built.
