file(REMOVE_RECURSE
  "../bench/micro_frontier"
  "../bench/micro_frontier.pdb"
  "CMakeFiles/micro_frontier.dir/micro_frontier.cpp.o"
  "CMakeFiles/micro_frontier.dir/micro_frontier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
