# Empty dependencies file for fig2_coloring_random.
# This may be replaced when dependencies are built.
