file(REMOVE_RECURSE
  "../bench/fig2_coloring_random"
  "../bench/fig2_coloring_random.pdb"
  "CMakeFiles/fig2_coloring_random.dir/fig2_coloring_random.cpp.o"
  "CMakeFiles/fig2_coloring_random.dir/fig2_coloring_random.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_coloring_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
