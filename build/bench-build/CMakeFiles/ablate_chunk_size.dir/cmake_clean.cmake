file(REMOVE_RECURSE
  "../bench/ablate_chunk_size"
  "../bench/ablate_chunk_size.pdb"
  "CMakeFiles/ablate_chunk_size.dir/ablate_chunk_size.cpp.o"
  "CMakeFiles/ablate_chunk_size.dir/ablate_chunk_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_chunk_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
