file(REMOVE_RECURSE
  "../bench/ablate_block_size"
  "../bench/ablate_block_size.pdb"
  "CMakeFiles/ablate_block_size.dir/ablate_block_size.cpp.o"
  "CMakeFiles/ablate_block_size.dir/ablate_block_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_block_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
