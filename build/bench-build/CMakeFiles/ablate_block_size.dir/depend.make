# Empty dependencies file for ablate_block_size.
# This may be replaced when dependencies are built.
