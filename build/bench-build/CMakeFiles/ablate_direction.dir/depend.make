# Empty dependencies file for ablate_direction.
# This may be replaced when dependencies are built.
