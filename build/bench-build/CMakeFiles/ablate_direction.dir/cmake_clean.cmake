file(REMOVE_RECURSE
  "../bench/ablate_direction"
  "../bench/ablate_direction.pdb"
  "CMakeFiles/ablate_direction.dir/ablate_direction.cpp.o"
  "CMakeFiles/ablate_direction.dir/ablate_direction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_direction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
