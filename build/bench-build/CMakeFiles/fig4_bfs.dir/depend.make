# Empty dependencies file for fig4_bfs.
# This may be replaced when dependencies are built.
