file(REMOVE_RECURSE
  "../bench/fig4_bfs"
  "../bench/fig4_bfs.pdb"
  "CMakeFiles/fig4_bfs.dir/fig4_bfs.cpp.o"
  "CMakeFiles/fig4_bfs.dir/fig4_bfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
