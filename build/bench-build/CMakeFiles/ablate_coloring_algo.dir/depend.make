# Empty dependencies file for ablate_coloring_algo.
# This may be replaced when dependencies are built.
