file(REMOVE_RECURSE
  "../bench/ablate_coloring_algo"
  "../bench/ablate_coloring_algo.pdb"
  "CMakeFiles/ablate_coloring_algo.dir/ablate_coloring_algo.cpp.o"
  "CMakeFiles/ablate_coloring_algo.dir/ablate_coloring_algo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_coloring_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
