# Empty compiler generated dependencies file for fig3_irregular.
# This may be replaced when dependencies are built.
