file(REMOVE_RECURSE
  "../bench/fig3_irregular"
  "../bench/fig3_irregular.pdb"
  "CMakeFiles/fig3_irregular.dir/fig3_irregular.cpp.o"
  "CMakeFiles/fig3_irregular.dir/fig3_irregular.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_irregular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
