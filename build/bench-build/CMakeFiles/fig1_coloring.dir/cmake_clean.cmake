file(REMOVE_RECURSE
  "../bench/fig1_coloring"
  "../bench/fig1_coloring.pdb"
  "CMakeFiles/fig1_coloring.dir/fig1_coloring.cpp.o"
  "CMakeFiles/fig1_coloring.dir/fig1_coloring.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
