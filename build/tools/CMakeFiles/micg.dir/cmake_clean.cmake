file(REMOVE_RECURSE
  "CMakeFiles/micg.dir/micg_cli.cpp.o"
  "CMakeFiles/micg.dir/micg_cli.cpp.o.d"
  "micg"
  "micg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
