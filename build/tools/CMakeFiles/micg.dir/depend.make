# Empty dependencies file for micg.
# This may be replaced when dependencies are built.
