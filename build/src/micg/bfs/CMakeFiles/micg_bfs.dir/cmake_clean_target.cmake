file(REMOVE_RECURSE
  "libmicg_bfs.a"
)
