file(REMOVE_RECURSE
  "CMakeFiles/micg_bfs.dir/bag.cpp.o"
  "CMakeFiles/micg_bfs.dir/bag.cpp.o.d"
  "CMakeFiles/micg_bfs.dir/block_queue.cpp.o"
  "CMakeFiles/micg_bfs.dir/block_queue.cpp.o.d"
  "CMakeFiles/micg_bfs.dir/centrality.cpp.o"
  "CMakeFiles/micg_bfs.dir/centrality.cpp.o.d"
  "CMakeFiles/micg_bfs.dir/compact_frontier.cpp.o"
  "CMakeFiles/micg_bfs.dir/compact_frontier.cpp.o.d"
  "CMakeFiles/micg_bfs.dir/direction.cpp.o"
  "CMakeFiles/micg_bfs.dir/direction.cpp.o.d"
  "CMakeFiles/micg_bfs.dir/layered.cpp.o"
  "CMakeFiles/micg_bfs.dir/layered.cpp.o.d"
  "CMakeFiles/micg_bfs.dir/parents.cpp.o"
  "CMakeFiles/micg_bfs.dir/parents.cpp.o.d"
  "CMakeFiles/micg_bfs.dir/seq.cpp.o"
  "CMakeFiles/micg_bfs.dir/seq.cpp.o.d"
  "CMakeFiles/micg_bfs.dir/tls_queue.cpp.o"
  "CMakeFiles/micg_bfs.dir/tls_queue.cpp.o.d"
  "CMakeFiles/micg_bfs.dir/validate.cpp.o"
  "CMakeFiles/micg_bfs.dir/validate.cpp.o.d"
  "libmicg_bfs.a"
  "libmicg_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micg_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
