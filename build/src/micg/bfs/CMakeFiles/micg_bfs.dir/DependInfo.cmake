
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/micg/bfs/bag.cpp" "src/micg/bfs/CMakeFiles/micg_bfs.dir/bag.cpp.o" "gcc" "src/micg/bfs/CMakeFiles/micg_bfs.dir/bag.cpp.o.d"
  "/root/repo/src/micg/bfs/block_queue.cpp" "src/micg/bfs/CMakeFiles/micg_bfs.dir/block_queue.cpp.o" "gcc" "src/micg/bfs/CMakeFiles/micg_bfs.dir/block_queue.cpp.o.d"
  "/root/repo/src/micg/bfs/centrality.cpp" "src/micg/bfs/CMakeFiles/micg_bfs.dir/centrality.cpp.o" "gcc" "src/micg/bfs/CMakeFiles/micg_bfs.dir/centrality.cpp.o.d"
  "/root/repo/src/micg/bfs/compact_frontier.cpp" "src/micg/bfs/CMakeFiles/micg_bfs.dir/compact_frontier.cpp.o" "gcc" "src/micg/bfs/CMakeFiles/micg_bfs.dir/compact_frontier.cpp.o.d"
  "/root/repo/src/micg/bfs/direction.cpp" "src/micg/bfs/CMakeFiles/micg_bfs.dir/direction.cpp.o" "gcc" "src/micg/bfs/CMakeFiles/micg_bfs.dir/direction.cpp.o.d"
  "/root/repo/src/micg/bfs/layered.cpp" "src/micg/bfs/CMakeFiles/micg_bfs.dir/layered.cpp.o" "gcc" "src/micg/bfs/CMakeFiles/micg_bfs.dir/layered.cpp.o.d"
  "/root/repo/src/micg/bfs/parents.cpp" "src/micg/bfs/CMakeFiles/micg_bfs.dir/parents.cpp.o" "gcc" "src/micg/bfs/CMakeFiles/micg_bfs.dir/parents.cpp.o.d"
  "/root/repo/src/micg/bfs/seq.cpp" "src/micg/bfs/CMakeFiles/micg_bfs.dir/seq.cpp.o" "gcc" "src/micg/bfs/CMakeFiles/micg_bfs.dir/seq.cpp.o.d"
  "/root/repo/src/micg/bfs/tls_queue.cpp" "src/micg/bfs/CMakeFiles/micg_bfs.dir/tls_queue.cpp.o" "gcc" "src/micg/bfs/CMakeFiles/micg_bfs.dir/tls_queue.cpp.o.d"
  "/root/repo/src/micg/bfs/validate.cpp" "src/micg/bfs/CMakeFiles/micg_bfs.dir/validate.cpp.o" "gcc" "src/micg/bfs/CMakeFiles/micg_bfs.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/micg/graph/CMakeFiles/micg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/rt/CMakeFiles/micg_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/support/CMakeFiles/micg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
