# Empty dependencies file for micg_bfs.
# This may be replaced when dependencies are built.
