file(REMOVE_RECURSE
  "libmicg_support.a"
)
