file(REMOVE_RECURSE
  "CMakeFiles/micg_support.dir/stats.cpp.o"
  "CMakeFiles/micg_support.dir/stats.cpp.o.d"
  "CMakeFiles/micg_support.dir/table.cpp.o"
  "CMakeFiles/micg_support.dir/table.cpp.o.d"
  "libmicg_support.a"
  "libmicg_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micg_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
