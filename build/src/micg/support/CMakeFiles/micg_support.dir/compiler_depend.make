# Empty compiler generated dependencies file for micg_support.
# This may be replaced when dependencies are built.
