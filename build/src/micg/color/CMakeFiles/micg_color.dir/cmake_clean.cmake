file(REMOVE_RECURSE
  "CMakeFiles/micg_color.dir/distance2.cpp.o"
  "CMakeFiles/micg_color.dir/distance2.cpp.o.d"
  "CMakeFiles/micg_color.dir/greedy.cpp.o"
  "CMakeFiles/micg_color.dir/greedy.cpp.o.d"
  "CMakeFiles/micg_color.dir/iterative.cpp.o"
  "CMakeFiles/micg_color.dir/iterative.cpp.o.d"
  "CMakeFiles/micg_color.dir/jones_plassmann.cpp.o"
  "CMakeFiles/micg_color.dir/jones_plassmann.cpp.o.d"
  "CMakeFiles/micg_color.dir/ordering.cpp.o"
  "CMakeFiles/micg_color.dir/ordering.cpp.o.d"
  "CMakeFiles/micg_color.dir/verify.cpp.o"
  "CMakeFiles/micg_color.dir/verify.cpp.o.d"
  "libmicg_color.a"
  "libmicg_color.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micg_color.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
