
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/micg/color/distance2.cpp" "src/micg/color/CMakeFiles/micg_color.dir/distance2.cpp.o" "gcc" "src/micg/color/CMakeFiles/micg_color.dir/distance2.cpp.o.d"
  "/root/repo/src/micg/color/greedy.cpp" "src/micg/color/CMakeFiles/micg_color.dir/greedy.cpp.o" "gcc" "src/micg/color/CMakeFiles/micg_color.dir/greedy.cpp.o.d"
  "/root/repo/src/micg/color/iterative.cpp" "src/micg/color/CMakeFiles/micg_color.dir/iterative.cpp.o" "gcc" "src/micg/color/CMakeFiles/micg_color.dir/iterative.cpp.o.d"
  "/root/repo/src/micg/color/jones_plassmann.cpp" "src/micg/color/CMakeFiles/micg_color.dir/jones_plassmann.cpp.o" "gcc" "src/micg/color/CMakeFiles/micg_color.dir/jones_plassmann.cpp.o.d"
  "/root/repo/src/micg/color/ordering.cpp" "src/micg/color/CMakeFiles/micg_color.dir/ordering.cpp.o" "gcc" "src/micg/color/CMakeFiles/micg_color.dir/ordering.cpp.o.d"
  "/root/repo/src/micg/color/verify.cpp" "src/micg/color/CMakeFiles/micg_color.dir/verify.cpp.o" "gcc" "src/micg/color/CMakeFiles/micg_color.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/micg/graph/CMakeFiles/micg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/rt/CMakeFiles/micg_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/support/CMakeFiles/micg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
