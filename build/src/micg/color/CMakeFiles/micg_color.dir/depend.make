# Empty dependencies file for micg_color.
# This may be replaced when dependencies are built.
