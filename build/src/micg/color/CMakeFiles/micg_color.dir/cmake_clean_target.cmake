file(REMOVE_RECURSE
  "libmicg_color.a"
)
