# Empty dependencies file for micg_benchkit.
# This may be replaced when dependencies are built.
