file(REMOVE_RECURSE
  "libmicg_benchkit.a"
)
