file(REMOVE_RECURSE
  "CMakeFiles/micg_benchkit.dir/benchkit.cpp.o"
  "CMakeFiles/micg_benchkit.dir/benchkit.cpp.o.d"
  "libmicg_benchkit.a"
  "libmicg_benchkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micg_benchkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
