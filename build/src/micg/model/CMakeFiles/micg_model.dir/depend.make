# Empty dependencies file for micg_model.
# This may be replaced when dependencies are built.
