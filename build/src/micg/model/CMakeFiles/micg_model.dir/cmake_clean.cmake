file(REMOVE_RECURSE
  "CMakeFiles/micg_model.dir/bfs_model.cpp.o"
  "CMakeFiles/micg_model.dir/bfs_model.cpp.o.d"
  "CMakeFiles/micg_model.dir/exec_model.cpp.o"
  "CMakeFiles/micg_model.dir/exec_model.cpp.o.d"
  "CMakeFiles/micg_model.dir/machine.cpp.o"
  "CMakeFiles/micg_model.dir/machine.cpp.o.d"
  "CMakeFiles/micg_model.dir/sched_model.cpp.o"
  "CMakeFiles/micg_model.dir/sched_model.cpp.o.d"
  "CMakeFiles/micg_model.dir/trace.cpp.o"
  "CMakeFiles/micg_model.dir/trace.cpp.o.d"
  "CMakeFiles/micg_model.dir/tracegen.cpp.o"
  "CMakeFiles/micg_model.dir/tracegen.cpp.o.d"
  "libmicg_model.a"
  "libmicg_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micg_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
