
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/micg/model/bfs_model.cpp" "src/micg/model/CMakeFiles/micg_model.dir/bfs_model.cpp.o" "gcc" "src/micg/model/CMakeFiles/micg_model.dir/bfs_model.cpp.o.d"
  "/root/repo/src/micg/model/exec_model.cpp" "src/micg/model/CMakeFiles/micg_model.dir/exec_model.cpp.o" "gcc" "src/micg/model/CMakeFiles/micg_model.dir/exec_model.cpp.o.d"
  "/root/repo/src/micg/model/machine.cpp" "src/micg/model/CMakeFiles/micg_model.dir/machine.cpp.o" "gcc" "src/micg/model/CMakeFiles/micg_model.dir/machine.cpp.o.d"
  "/root/repo/src/micg/model/sched_model.cpp" "src/micg/model/CMakeFiles/micg_model.dir/sched_model.cpp.o" "gcc" "src/micg/model/CMakeFiles/micg_model.dir/sched_model.cpp.o.d"
  "/root/repo/src/micg/model/trace.cpp" "src/micg/model/CMakeFiles/micg_model.dir/trace.cpp.o" "gcc" "src/micg/model/CMakeFiles/micg_model.dir/trace.cpp.o.d"
  "/root/repo/src/micg/model/tracegen.cpp" "src/micg/model/CMakeFiles/micg_model.dir/tracegen.cpp.o" "gcc" "src/micg/model/CMakeFiles/micg_model.dir/tracegen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/micg/graph/CMakeFiles/micg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/rt/CMakeFiles/micg_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/color/CMakeFiles/micg_color.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/bfs/CMakeFiles/micg_bfs.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/support/CMakeFiles/micg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
