file(REMOVE_RECURSE
  "libmicg_model.a"
)
