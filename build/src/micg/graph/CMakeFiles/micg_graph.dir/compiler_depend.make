# Empty compiler generated dependencies file for micg_graph.
# This may be replaced when dependencies are built.
