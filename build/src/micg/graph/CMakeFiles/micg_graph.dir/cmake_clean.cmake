file(REMOVE_RECURSE
  "CMakeFiles/micg_graph.dir/builder.cpp.o"
  "CMakeFiles/micg_graph.dir/builder.cpp.o.d"
  "CMakeFiles/micg_graph.dir/components.cpp.o"
  "CMakeFiles/micg_graph.dir/components.cpp.o.d"
  "CMakeFiles/micg_graph.dir/csr.cpp.o"
  "CMakeFiles/micg_graph.dir/csr.cpp.o.d"
  "CMakeFiles/micg_graph.dir/generators.cpp.o"
  "CMakeFiles/micg_graph.dir/generators.cpp.o.d"
  "CMakeFiles/micg_graph.dir/io_binary.cpp.o"
  "CMakeFiles/micg_graph.dir/io_binary.cpp.o.d"
  "CMakeFiles/micg_graph.dir/io_mm.cpp.o"
  "CMakeFiles/micg_graph.dir/io_mm.cpp.o.d"
  "CMakeFiles/micg_graph.dir/permute.cpp.o"
  "CMakeFiles/micg_graph.dir/permute.cpp.o.d"
  "CMakeFiles/micg_graph.dir/props.cpp.o"
  "CMakeFiles/micg_graph.dir/props.cpp.o.d"
  "CMakeFiles/micg_graph.dir/suite.cpp.o"
  "CMakeFiles/micg_graph.dir/suite.cpp.o.d"
  "libmicg_graph.a"
  "libmicg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
