file(REMOVE_RECURSE
  "libmicg_graph.a"
)
