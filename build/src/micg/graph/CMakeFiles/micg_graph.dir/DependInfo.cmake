
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/micg/graph/builder.cpp" "src/micg/graph/CMakeFiles/micg_graph.dir/builder.cpp.o" "gcc" "src/micg/graph/CMakeFiles/micg_graph.dir/builder.cpp.o.d"
  "/root/repo/src/micg/graph/components.cpp" "src/micg/graph/CMakeFiles/micg_graph.dir/components.cpp.o" "gcc" "src/micg/graph/CMakeFiles/micg_graph.dir/components.cpp.o.d"
  "/root/repo/src/micg/graph/csr.cpp" "src/micg/graph/CMakeFiles/micg_graph.dir/csr.cpp.o" "gcc" "src/micg/graph/CMakeFiles/micg_graph.dir/csr.cpp.o.d"
  "/root/repo/src/micg/graph/generators.cpp" "src/micg/graph/CMakeFiles/micg_graph.dir/generators.cpp.o" "gcc" "src/micg/graph/CMakeFiles/micg_graph.dir/generators.cpp.o.d"
  "/root/repo/src/micg/graph/io_binary.cpp" "src/micg/graph/CMakeFiles/micg_graph.dir/io_binary.cpp.o" "gcc" "src/micg/graph/CMakeFiles/micg_graph.dir/io_binary.cpp.o.d"
  "/root/repo/src/micg/graph/io_mm.cpp" "src/micg/graph/CMakeFiles/micg_graph.dir/io_mm.cpp.o" "gcc" "src/micg/graph/CMakeFiles/micg_graph.dir/io_mm.cpp.o.d"
  "/root/repo/src/micg/graph/permute.cpp" "src/micg/graph/CMakeFiles/micg_graph.dir/permute.cpp.o" "gcc" "src/micg/graph/CMakeFiles/micg_graph.dir/permute.cpp.o.d"
  "/root/repo/src/micg/graph/props.cpp" "src/micg/graph/CMakeFiles/micg_graph.dir/props.cpp.o" "gcc" "src/micg/graph/CMakeFiles/micg_graph.dir/props.cpp.o.d"
  "/root/repo/src/micg/graph/suite.cpp" "src/micg/graph/CMakeFiles/micg_graph.dir/suite.cpp.o" "gcc" "src/micg/graph/CMakeFiles/micg_graph.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/micg/support/CMakeFiles/micg_support.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/rt/CMakeFiles/micg_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
