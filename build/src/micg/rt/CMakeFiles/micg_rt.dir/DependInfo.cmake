
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/micg/rt/exec.cpp" "src/micg/rt/CMakeFiles/micg_rt.dir/exec.cpp.o" "gcc" "src/micg/rt/CMakeFiles/micg_rt.dir/exec.cpp.o.d"
  "/root/repo/src/micg/rt/pipeline.cpp" "src/micg/rt/CMakeFiles/micg_rt.dir/pipeline.cpp.o" "gcc" "src/micg/rt/CMakeFiles/micg_rt.dir/pipeline.cpp.o.d"
  "/root/repo/src/micg/rt/scheduler.cpp" "src/micg/rt/CMakeFiles/micg_rt.dir/scheduler.cpp.o" "gcc" "src/micg/rt/CMakeFiles/micg_rt.dir/scheduler.cpp.o.d"
  "/root/repo/src/micg/rt/thread_pool.cpp" "src/micg/rt/CMakeFiles/micg_rt.dir/thread_pool.cpp.o" "gcc" "src/micg/rt/CMakeFiles/micg_rt.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/micg/support/CMakeFiles/micg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
