file(REMOVE_RECURSE
  "libmicg_rt.a"
)
