file(REMOVE_RECURSE
  "CMakeFiles/micg_rt.dir/exec.cpp.o"
  "CMakeFiles/micg_rt.dir/exec.cpp.o.d"
  "CMakeFiles/micg_rt.dir/pipeline.cpp.o"
  "CMakeFiles/micg_rt.dir/pipeline.cpp.o.d"
  "CMakeFiles/micg_rt.dir/scheduler.cpp.o"
  "CMakeFiles/micg_rt.dir/scheduler.cpp.o.d"
  "CMakeFiles/micg_rt.dir/thread_pool.cpp.o"
  "CMakeFiles/micg_rt.dir/thread_pool.cpp.o.d"
  "libmicg_rt.a"
  "libmicg_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micg_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
