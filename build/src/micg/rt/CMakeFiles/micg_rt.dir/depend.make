# Empty dependencies file for micg_rt.
# This may be replaced when dependencies are built.
