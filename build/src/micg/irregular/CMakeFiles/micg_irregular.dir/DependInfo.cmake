
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/micg/irregular/gauss_seidel.cpp" "src/micg/irregular/CMakeFiles/micg_irregular.dir/gauss_seidel.cpp.o" "gcc" "src/micg/irregular/CMakeFiles/micg_irregular.dir/gauss_seidel.cpp.o.d"
  "/root/repo/src/micg/irregular/heat.cpp" "src/micg/irregular/CMakeFiles/micg_irregular.dir/heat.cpp.o" "gcc" "src/micg/irregular/CMakeFiles/micg_irregular.dir/heat.cpp.o.d"
  "/root/repo/src/micg/irregular/kernel.cpp" "src/micg/irregular/CMakeFiles/micg_irregular.dir/kernel.cpp.o" "gcc" "src/micg/irregular/CMakeFiles/micg_irregular.dir/kernel.cpp.o.d"
  "/root/repo/src/micg/irregular/pagerank.cpp" "src/micg/irregular/CMakeFiles/micg_irregular.dir/pagerank.cpp.o" "gcc" "src/micg/irregular/CMakeFiles/micg_irregular.dir/pagerank.cpp.o.d"
  "/root/repo/src/micg/irregular/spmv.cpp" "src/micg/irregular/CMakeFiles/micg_irregular.dir/spmv.cpp.o" "gcc" "src/micg/irregular/CMakeFiles/micg_irregular.dir/spmv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/micg/graph/CMakeFiles/micg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/rt/CMakeFiles/micg_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/color/CMakeFiles/micg_color.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/support/CMakeFiles/micg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
