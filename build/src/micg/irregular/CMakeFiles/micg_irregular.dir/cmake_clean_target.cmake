file(REMOVE_RECURSE
  "libmicg_irregular.a"
)
