file(REMOVE_RECURSE
  "CMakeFiles/micg_irregular.dir/gauss_seidel.cpp.o"
  "CMakeFiles/micg_irregular.dir/gauss_seidel.cpp.o.d"
  "CMakeFiles/micg_irregular.dir/heat.cpp.o"
  "CMakeFiles/micg_irregular.dir/heat.cpp.o.d"
  "CMakeFiles/micg_irregular.dir/kernel.cpp.o"
  "CMakeFiles/micg_irregular.dir/kernel.cpp.o.d"
  "CMakeFiles/micg_irregular.dir/pagerank.cpp.o"
  "CMakeFiles/micg_irregular.dir/pagerank.cpp.o.d"
  "CMakeFiles/micg_irregular.dir/spmv.cpp.o"
  "CMakeFiles/micg_irregular.dir/spmv.cpp.o.d"
  "libmicg_irregular.a"
  "libmicg_irregular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micg_irregular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
