# Empty dependencies file for micg_irregular.
# This may be replaced when dependencies are built.
