# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/rt_pool_test[1]_include.cmake")
include("/root/repo/build/tests/rt_sched_test[1]_include.cmake")
include("/root/repo/build/tests/rt_loop_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/color_test[1]_include.cmake")
include("/root/repo/build/tests/bfs_test[1]_include.cmake")
include("/root/repo/build/tests/irregular_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/rt_hyper_test[1]_include.cmake")
include("/root/repo/build/tests/algo_ext_test[1]_include.cmake")
include("/root/repo/build/tests/algo_ext2_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/rt_exec_reuse_test[1]_include.cmake")
include("/root/repo/build/tests/rt_scan_array_test[1]_include.cmake")
