# Empty dependencies file for rt_loop_test.
# This may be replaced when dependencies are built.
