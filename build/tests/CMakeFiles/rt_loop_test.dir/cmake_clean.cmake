file(REMOVE_RECURSE
  "CMakeFiles/rt_loop_test.dir/rt_loop_test.cpp.o"
  "CMakeFiles/rt_loop_test.dir/rt_loop_test.cpp.o.d"
  "rt_loop_test"
  "rt_loop_test.pdb"
  "rt_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
