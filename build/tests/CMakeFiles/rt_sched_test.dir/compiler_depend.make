# Empty compiler generated dependencies file for rt_sched_test.
# This may be replaced when dependencies are built.
