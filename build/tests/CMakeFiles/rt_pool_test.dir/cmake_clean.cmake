file(REMOVE_RECURSE
  "CMakeFiles/rt_pool_test.dir/rt_pool_test.cpp.o"
  "CMakeFiles/rt_pool_test.dir/rt_pool_test.cpp.o.d"
  "rt_pool_test"
  "rt_pool_test.pdb"
  "rt_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
