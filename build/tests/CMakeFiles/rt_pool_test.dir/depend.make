# Empty dependencies file for rt_pool_test.
# This may be replaced when dependencies are built.
