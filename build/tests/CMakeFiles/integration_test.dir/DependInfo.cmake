
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/micg/model/CMakeFiles/micg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/irregular/CMakeFiles/micg_irregular.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/bfs/CMakeFiles/micg_bfs.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/color/CMakeFiles/micg_color.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/graph/CMakeFiles/micg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/rt/CMakeFiles/micg_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/micg/support/CMakeFiles/micg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
