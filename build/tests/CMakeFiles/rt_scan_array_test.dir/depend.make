# Empty dependencies file for rt_scan_array_test.
# This may be replaced when dependencies are built.
