file(REMOVE_RECURSE
  "CMakeFiles/rt_scan_array_test.dir/rt_scan_array_test.cpp.o"
  "CMakeFiles/rt_scan_array_test.dir/rt_scan_array_test.cpp.o.d"
  "rt_scan_array_test"
  "rt_scan_array_test.pdb"
  "rt_scan_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_scan_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
