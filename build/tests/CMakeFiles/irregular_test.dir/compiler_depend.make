# Empty compiler generated dependencies file for irregular_test.
# This may be replaced when dependencies are built.
