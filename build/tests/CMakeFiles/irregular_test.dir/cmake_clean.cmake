file(REMOVE_RECURSE
  "CMakeFiles/irregular_test.dir/irregular_test.cpp.o"
  "CMakeFiles/irregular_test.dir/irregular_test.cpp.o.d"
  "irregular_test"
  "irregular_test.pdb"
  "irregular_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
