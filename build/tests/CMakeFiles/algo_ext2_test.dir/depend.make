# Empty dependencies file for algo_ext2_test.
# This may be replaced when dependencies are built.
