file(REMOVE_RECURSE
  "CMakeFiles/algo_ext2_test.dir/algo_ext2_test.cpp.o"
  "CMakeFiles/algo_ext2_test.dir/algo_ext2_test.cpp.o.d"
  "algo_ext2_test"
  "algo_ext2_test.pdb"
  "algo_ext2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_ext2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
