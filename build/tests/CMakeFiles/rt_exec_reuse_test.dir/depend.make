# Empty dependencies file for rt_exec_reuse_test.
# This may be replaced when dependencies are built.
