file(REMOVE_RECURSE
  "CMakeFiles/rt_exec_reuse_test.dir/rt_exec_reuse_test.cpp.o"
  "CMakeFiles/rt_exec_reuse_test.dir/rt_exec_reuse_test.cpp.o.d"
  "rt_exec_reuse_test"
  "rt_exec_reuse_test.pdb"
  "rt_exec_reuse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_exec_reuse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
