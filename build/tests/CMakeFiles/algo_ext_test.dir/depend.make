# Empty dependencies file for algo_ext_test.
# This may be replaced when dependencies are built.
