file(REMOVE_RECURSE
  "CMakeFiles/algo_ext_test.dir/algo_ext_test.cpp.o"
  "CMakeFiles/algo_ext_test.dir/algo_ext_test.cpp.o.d"
  "algo_ext_test"
  "algo_ext_test.pdb"
  "algo_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
