file(REMOVE_RECURSE
  "CMakeFiles/rt_hyper_test.dir/rt_hyper_test.cpp.o"
  "CMakeFiles/rt_hyper_test.dir/rt_hyper_test.cpp.o.d"
  "rt_hyper_test"
  "rt_hyper_test.pdb"
  "rt_hyper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_hyper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
