# Empty compiler generated dependencies file for rt_hyper_test.
# This may be replaced when dependencies are built.
