file(REMOVE_RECURSE
  "CMakeFiles/mesh_simulation.dir/mesh_simulation.cpp.o"
  "CMakeFiles/mesh_simulation.dir/mesh_simulation.cpp.o.d"
  "mesh_simulation"
  "mesh_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
