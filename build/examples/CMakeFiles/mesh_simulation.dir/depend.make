# Empty dependencies file for mesh_simulation.
# This may be replaced when dependencies are built.
