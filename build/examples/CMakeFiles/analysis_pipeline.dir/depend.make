# Empty dependencies file for analysis_pipeline.
# This may be replaced when dependencies are built.
