file(REMOVE_RECURSE
  "CMakeFiles/task_scheduling.dir/task_scheduling.cpp.o"
  "CMakeFiles/task_scheduling.dir/task_scheduling.cpp.o.d"
  "task_scheduling"
  "task_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
