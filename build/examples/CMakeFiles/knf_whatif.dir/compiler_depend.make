# Empty compiler generated dependencies file for knf_whatif.
# This may be replaced when dependencies are built.
