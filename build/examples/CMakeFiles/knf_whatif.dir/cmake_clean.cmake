file(REMOVE_RECURSE
  "CMakeFiles/knf_whatif.dir/knf_whatif.cpp.o"
  "CMakeFiles/knf_whatif.dir/knf_whatif.cpp.o.d"
  "knf_whatif"
  "knf_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knf_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
